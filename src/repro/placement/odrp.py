"""ODRP: Optimal DSP Replication and Placement (baseline, section 6.3).

A reimplementation of the joint replication + placement ILP of
Cardellini et al. ("Optimal operator replication and placement for
distributed stream processing systems", SIGMETRICS PER 2017), adapted to
the slot-based resource model the way the CAPSys paper describes its
comparison setup: an operator's execution time is the inverse of its
true processing rate, every node has the same speed-up rate, every link
the same latency and bandwidth, one slot per task, perfect availability.

The model jointly chooses each operator's parallelism (replication) and
the worker of every replica, minimising a weighted sum of:

- **latency**: the sum of operator execution times, where replication
  ``k`` divides an operator's execution time by ``k`` (the model's
  speed-up assumption), plus a propagation-delay penalty per pair of
  workers exchanging traffic;
- **network**: edge traffic rates, charged whenever the two endpoint
  operators occupy different workers;
- **cost**: slots used plus workers activated.

Crucially — and this is the failure mode the paper demonstrates — the
formulation has *no constraint that the deployment sustains the input
rate*: configurations weighting cost return under-provisioned plans that
collapse under load, and the latency-only configuration over-provisions.

Solved with :func:`scipy.optimize.milp` (branch-and-bound), which
reproduces the decision-time gap against CAPS: exhaustive ILP solving
versus a pruned DFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.dataflow.cluster import Cluster, WorkerSpec
from repro.dataflow.graph import LogicalGraph
from repro.dataflow.physical import PhysicalGraph
from repro.core.cost_model import UnitCosts
from repro.observability import clock
from repro.core.plan import PlacementPlan


@dataclass(frozen=True)
class OdrpConfig:
    """Objective weights for one ODRP run.

    The three presets correspond to the paper's Table 3 rows:

    - :meth:`default`: equal weight on all objectives.
    - :meth:`weighted`: hand-tuned to emphasise "throughput and resource
      efficiency" — more replication pressure than default, but strong
      network emphasis that co-locates traffic-heavy operators.
    - :meth:`latency`: only the latency objective.
    """

    w_latency: float = 1.0
    w_network: float = 1.0
    w_cost: float = 1.0
    label: str = "custom"

    def __post_init__(self) -> None:
        if min(self.w_latency, self.w_network, self.w_cost) < 0:
            raise ValueError("weights must be non-negative")
        if self.w_latency + self.w_network + self.w_cost <= 0:
            raise ValueError("at least one weight must be positive")

    @classmethod
    def default(cls) -> "OdrpConfig":
        return cls(w_latency=1.0, w_network=1.0, w_cost=1.0, label="ODRP-Default")

    @classmethod
    def weighted(cls) -> "OdrpConfig":
        return cls(w_latency=2.5, w_network=1.5, w_cost=0.5, label="ODRP-Weighted")

    @classmethod
    def latency(cls) -> "OdrpConfig":
        return cls(w_latency=1.0, w_network=0.0, w_cost=0.0, label="ODRP-Latency")


@dataclass
class OdrpResult:
    """Solution of one ODRP instance."""

    parallelism: Dict[str, int]
    plan: PlacementPlan
    physical: PhysicalGraph
    decision_time_s: float
    objective: float
    slots_used: int
    status: str


class OdrpSolver:
    """Builds and solves the ODRP MILP for one logical query.

    Args:
        graph: The logical query (single job).
        cluster: The worker cluster.
        unit_costs: Profiled per-record costs per operator name.
        source_rates: Target rate per source operator name.
        config: Objective weights.
        max_parallelism: Upper bound on per-operator replication; defaults
            to the cluster slot count.
        fixed_parallelism: Operators whose parallelism is not free (the
            experiments pin sources to match the CAPSys deployment).
        time_limit_s: Solver time budget.
    """

    def __init__(
        self,
        graph: LogicalGraph,
        cluster: Cluster,
        unit_costs: Mapping[str, UnitCosts],
        source_rates: Mapping[str, float],
        config: Optional[OdrpConfig] = None,
        max_parallelism: Optional[int] = None,
        fixed_parallelism: Optional[Mapping[str, int]] = None,
        time_limit_s: float = 300.0,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.cluster = cluster
        self.config = config or OdrpConfig.default()
        self.unit_costs = dict(unit_costs)
        self.source_rates = dict(source_rates)
        self.fixed_parallelism = dict(fixed_parallelism or {})
        self.time_limit_s = time_limit_s

        self.ops: List[str] = graph.topological_order()
        missing = set(self.ops) - set(self.unit_costs)
        if missing:
            raise KeyError(f"missing unit costs for operators {sorted(missing)}")
        self.workers: List[int] = [w.worker_id for w in cluster.workers]
        self.k_max = int(max_parallelism or cluster.total_slots)
        if self.k_max < 1:
            raise ValueError("max_parallelism must be >= 1")

        self._edge_rates = self._compute_edge_rates()
        self._exec_time = {op: self._execution_time(op) for op in self.ops}

    # ------------------------------------------------------------------
    # Model inputs
    # ------------------------------------------------------------------
    def _compute_edge_rates(self) -> Dict[Tuple[str, str], float]:
        """Per logical edge: traffic in bytes/s at the target input rate.

        This is the paper's "lambda value (data transfer rate) according
        to the target input rate and operator selectivity".
        """
        in_rate: Dict[str, float] = {}
        out_rate: Dict[str, float] = {}
        for op in self.ops:
            spec = self.graph.operator(op)
            if spec.is_source:
                rate = self.source_rates.get(op, 0.0)
            else:
                rate = sum(out_rate[e.src] for e in self.graph.upstream(op))
            in_rate[op] = rate
            out_rate[op] = rate * self.unit_costs[op].selectivity
        rates: Dict[Tuple[str, str], float] = {}
        for edge in self.graph.edges:
            rec_bytes = max(1.0, self.unit_costs[edge.src].net_bytes_per_record)
            rates[(edge.src, edge.dst)] = out_rate[edge.src] * rec_bytes
        return rates

    def _execution_time(self, op: str) -> float:
        """Per-record service time: the inverse of the true processing rate."""
        uc = self.unit_costs[op]
        spec: WorkerSpec = self.cluster.workers[0].spec
        return (
            uc.cpu_per_record
            + uc.io_bytes_per_record / spec.disk_bandwidth
            + uc.selectivity * uc.net_bytes_per_record / spec.network_bandwidth
        )

    # ------------------------------------------------------------------
    # MILP assembly
    # ------------------------------------------------------------------
    def solve(self) -> OdrpResult:
        ops, workers, K = self.ops, self.workers, self.k_max
        n_ops, n_w = len(ops), len(workers)
        edges = [(e.src, e.dst) for e in self.graph.edges]
        pairs = [(w1, w2) for w1 in range(n_w) for w2 in range(n_w) if w1 != w2]

        # Variable layout: p[o,k] | r[o,w] | z[o,w] | y[w] | q[e,(w1,w2)]
        P0 = 0
        R0 = P0 + n_ops * K
        Z0 = R0 + n_ops * n_w
        Y0 = Z0 + n_ops * n_w
        Q0 = Y0 + n_w
        n_vars = Q0 + len(edges) * len(pairs)

        def pi(o: int, k: int) -> int:  # k in 1..K
            return P0 + o * K + (k - 1)

        def ri(o: int, w: int) -> int:
            return R0 + o * n_w + w

        def zi(o: int, w: int) -> int:
            return Z0 + o * n_w + w

        def yi(w: int) -> int:
            return Y0 + w

        def qi(e: int, p_idx: int) -> int:
            return Q0 + e * len(pairs) + p_idx

        rows: List[np.ndarray] = []
        lbs: List[float] = []
        ubs: List[float] = []

        def add(coeffs: Dict[int, float], lb: float, ub: float) -> None:
            row = np.zeros(n_vars)
            for idx, val in coeffs.items():
                row[idx] = val
            rows.append(row)
            lbs.append(lb)
            ubs.append(ub)

        op_index = {op: i for i, op in enumerate(ops)}
        for o, op in enumerate(ops):
            # exactly one parallelism choice
            add({pi(o, k): 1.0 for k in range(1, K + 1)}, 1.0, 1.0)
            # replicas match chosen parallelism
            coeffs = {ri(o, w): 1.0 for w in range(n_w)}
            for k in range(1, K + 1):
                coeffs[pi(o, k)] = -float(k)
            add(coeffs, 0.0, 0.0)
            if op in self.fixed_parallelism:
                k_fixed = self.fixed_parallelism[op]
                if not 1 <= k_fixed <= K:
                    raise ValueError(f"fixed parallelism for {op!r} out of range")
                add({pi(o, k_fixed): 1.0}, 1.0, 1.0)
            for w in range(n_w):
                # link r and z
                add({ri(o, w): 1.0, zi(o, w): -float(K)}, -np.inf, 0.0)
                add({zi(o, w): 1.0, ri(o, w): -1.0}, -np.inf, 0.0)
                # worker activation
                add({zi(o, w): 1.0, yi(w): -1.0}, -np.inf, 0.0)
        for w, worker_id in enumerate(workers):
            slots = self.cluster.slots_of(worker_id)
            add({ri(o, w): 1.0 for o in range(n_ops)}, 0.0, float(slots))
        for e, (src, dst) in enumerate(edges):
            o_src, o_dst = op_index[src], op_index[dst]
            for p_idx, (w1, w2) in enumerate(pairs):
                # q >= z_src,w1 + z_dst,w2 - 1
                add(
                    {zi(o_src, w1): 1.0, zi(o_dst, w2): 1.0, qi(e, p_idx): -1.0},
                    -np.inf,
                    1.0,
                )

        # ------------------------------------------------------------------
        # Objective (normalised so the three terms are comparable).
        # ------------------------------------------------------------------
        c = np.zeros(n_vars)
        total_exec = sum(self._exec_time[op] for op in ops) or 1.0
        total_traffic = sum(self._edge_rates.values()) or 1.0
        total_slots = float(self.cluster.total_slots)
        link_latency = self.cluster.link_latency_s

        for o, op in enumerate(ops):
            for k in range(1, K + 1):
                # execution time shrinks with replication (speed-up model)
                c[pi(o, k)] += self.config.w_latency * (
                    self._exec_time[op] / k
                ) / total_exec
                c[pi(o, k)] += self.config.w_cost * k / total_slots
        for e, (src, dst) in enumerate(edges):
            traffic = self._edge_rates[(src, dst)]
            for p_idx in range(len(pairs)):
                # Network objective: charge an edge's (normalised) traffic
                # once per worker pair it spans, so spreading an operator
                # over more workers costs more network.
                c[qi(e, p_idx)] += (
                    self.config.w_network * traffic / total_traffic / len(pairs)
                )
                # Latency objective: one propagation delay per edge hop;
                # averaged over pairs so the penalty approximates "does
                # this edge cross workers", not "how many pairs exist" —
                # otherwise the pair count swamps the execution-time term
                # and artificially suppresses replication.
                c[qi(e, p_idx)] += (
                    self.config.w_latency
                    * link_latency
                    / max(total_exec, 1e-9)
                    / len(pairs)
                )
        for w in range(n_w):
            c[yi(w)] += self.config.w_cost * 0.25 / n_w

        integrality = np.ones(n_vars)
        lower = np.zeros(n_vars)
        upper = np.ones(n_vars)
        upper[R0:Z0] = float(K)  # r variables are general integers

        started = clock.monotonic()
        result = milp(
            c=c,
            constraints=LinearConstraint(np.vstack(rows), np.array(lbs), np.array(ubs)),
            integrality=integrality,
            bounds=Bounds(lower, upper),
            options={"time_limit": self.time_limit_s},
        )
        decision_time = clock.elapsed_since(started)
        if result.x is None:
            raise RuntimeError(f"ODRP MILP failed: {result.message}")

        x = np.round(result.x).astype(int)
        parallelism: Dict[str, int] = {}
        for o, op in enumerate(ops):
            parallelism[op] = sum(x[ri(o, w)] for w in range(n_w))
        scaled = self.graph.with_parallelism(parallelism)
        physical = PhysicalGraph.expand(scaled)
        counts: Dict[Tuple[str, str], Dict[int, int]] = {}
        for o, op in enumerate(ops):
            per_worker = {
                workers[w]: int(x[ri(o, w)])
                for w in range(n_w)
                if x[ri(o, w)] > 0
            }
            counts[(scaled.job_id, op)] = per_worker
        plan = PlacementPlan.from_operator_counts(physical, counts)
        plan.validate(physical, self.cluster)
        return OdrpResult(
            parallelism=parallelism,
            plan=plan,
            physical=physical,
            decision_time_s=decision_time,
            objective=float(result.fun),
            slots_used=sum(parallelism.values()),
            status=str(result.message),
        )
