"""Flink's default slot-allocation policy.

Paper section 2.2: "Flink's default policy iterates over workers,
filling up all of a worker's available slots before moving on to the
next. However, the tasks to be scheduled are selected at random and
placement plans, as well as their performance, can vary significantly
across different runs of the same query on the same worker cluster."

We reproduce exactly that: a seeded shuffle of the task list, assigned
to workers in id order, each worker filled to capacity before the next
one is touched. Because slots are filled densely, the policy tends to
co-locate whole operators onto few workers — the failure mode the
motivation study's worst plans (P4-P6 in Figure 2) exhibit.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.dataflow.cluster import Cluster
from repro.dataflow.physical import PhysicalGraph
from repro.core.plan import PlacementPlan
from repro.placement.base import PlacementStrategy


class FlinkDefaultStrategy(PlacementStrategy):
    """Fill workers one at a time with randomly ordered tasks."""

    name = "default"

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed

    def place(self, physical: PhysicalGraph, cluster: Cluster) -> PlacementPlan:
        rng = random.Random(self.seed)
        task_uids = [t.uid for t in physical.tasks]
        rng.shuffle(task_uids)

        assignment: Dict[str, int] = {}
        workers = list(cluster.workers)
        cursor = 0
        free = workers[cursor].slots
        for uid in task_uids:
            while free == 0:
                cursor += 1
                if cursor >= len(workers):
                    raise RuntimeError("ran out of slots; deployment was not validated")
                free = workers[cursor].slots
            assignment[uid] = workers[cursor].worker_id
            free -= 1
        return PlacementPlan(assignment)
