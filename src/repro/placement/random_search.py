"""Random-sampling placement baseline.

Draws ``samples`` uniformly random feasible plans and keeps the one with
the lowest scalarised CAPS cost. This is not a paper baseline; it is the
natural "how far does naive sampling get you" ablation for the search
benchmarks: with the same cost model but no systematic enumeration,
pruning, or duplicate elimination, how close does random sampling come
to the CAPS plan at equal decision budget?
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.dataflow.cluster import Cluster
from repro.dataflow.physical import PhysicalGraph
from repro.core.cost_model import CostModel
from repro.core.plan import PlacementPlan
from repro.placement.base import PlacementStrategy


def random_feasible_plan(
    physical: PhysicalGraph, cluster: Cluster, rng: random.Random
) -> PlacementPlan:
    """One uniformly random slot assignment (each slot equally likely)."""
    slots: List[int] = []
    for worker in cluster.workers:
        slots.extend([worker.worker_id] * worker.slots)
    rng.shuffle(slots)
    assignment: Dict[str, int] = {}
    for task, worker_id in zip(physical.tasks, slots):
        assignment[task.uid] = worker_id
    return PlacementPlan(assignment)


class RandomSearchStrategy(PlacementStrategy):
    """Best-of-``samples`` random plans under the CAPS cost model."""

    name = "random-search"

    def __init__(
        self,
        cost_model_factory: Callable[[PhysicalGraph, Cluster], CostModel],
        samples: int = 100,
        seed: Optional[int] = None,
    ) -> None:
        """``cost_model_factory`` builds the scoring model per placement
        problem (it needs task costs, which depend on target rates the
        strategy itself does not know)."""
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.cost_model_factory = cost_model_factory
        self.samples = samples
        self.seed = seed

    def place(self, physical: PhysicalGraph, cluster: Cluster) -> PlacementPlan:
        rng = random.Random(self.seed)
        cost_model = self.cost_model_factory(physical, cluster)
        best_plan: Optional[PlacementPlan] = None
        best_score = float("inf")
        for _ in range(self.samples):
            plan = random_feasible_plan(physical, cluster, rng)
            score = cost_model.cost(plan).total()
            if score < best_score:
                best_plan, best_score = plan, score
        assert best_plan is not None
        return best_plan
