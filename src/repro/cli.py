"""Command-line interface for the CAPSys reproduction.

Subcommands mirror the library's main entry points:

- ``place``     profile a query, size it with DS2, place it with a
                strategy, simulate, and report the outcome;
- ``compare``   run CAPS vs the Flink baselines on one query;
- ``autoscale`` run the adaptive control loop under a square-wave
                workload and print the convergence timeline;
- ``explore``   enumerate a query's placement space and summarise the
                cost/performance spread (the motivation study);
- ``validate-runtime``  cross-validate the fluid model against the
                sharded record runtime on Q1/Q2/Q6 (DESIGN.md §12);
- ``queries``   list the available queries and their calibrated rates.

Usage:
    python -m repro.cli queries
    python -m repro.cli place Q1-sliding --strategy caps
    python -m repro.cli compare Q5-aggregate --runs 5
    python -m repro.cli autoscale Q3-inf --duration 2700
    python -m repro.cli explore Q1-sliding
    python -m repro.cli validate-runtime --queries q1,q2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.controller.capsys import CAPSysController, ControllerConfig
from repro.controller.guards import GuardConfig
from repro.core import SEARCH_BACKENDS
from repro.dataflow.cluster import Cluster, M5D_2XLARGE, R5D_XLARGE
from repro.dataflow.physical import PhysicalGraph
from repro.experiments import enumerate_all_plans
from repro.experiments.figures import convergence_timeline_rows
from repro.experiments.validate_runtime import cross_validate, format_validation
from repro.experiments.reporting import box_stats, format_percent, format_table
from repro.experiments.runner import simulate_plan, strategy_box_runs
from repro.faults import ChaosSchedule, CheckpointConfig, ControlChaosSchedule
from repro.observability import MetricRegistry, Tracer
from repro.placement import CapsStrategy, FlinkDefaultStrategy, FlinkEvenlyStrategy
from repro.simulator.engine import SimulationConfig
from repro.simulator.plan_cache import DEFAULT_CACHE
from repro.workloads import ALL_QUERIES, query_by_name
from repro.workloads.rates import SquareWaveRate


def _cluster(args: argparse.Namespace) -> Cluster:
    spec = {"r5d": R5D_XLARGE, "m5d": M5D_2XLARGE}[args.instance]
    return Cluster.homogeneous(spec.with_slots(args.slots), count=args.workers)


def _add_cluster_args(parser: argparse.ArgumentParser, workers=4, slots=8) -> None:
    parser.add_argument("--workers", type=int, default=workers,
                        help="number of workers")
    parser.add_argument("--slots", type=int, default=slots,
                        help="slots per worker")
    parser.add_argument("--instance", choices=("r5d", "m5d"), default="m5d",
                        help="worker hardware preset")


def _add_search_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--search-backend", choices=SEARCH_BACKENDS,
                        default="sequential",
                        help="placement search backend (process = multicore)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker count for parallel search backends "
                             "(default: one per core)")


def _add_ff_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fast-forward", action="store_true",
        help="leap over converged steady-state ticks (bit-identical "
             "results, less wall-clock; see DESIGN.md §9)")


def _controller_config(args: argparse.Namespace) -> ControllerConfig:
    interval = getattr(args, "checkpoint_interval", None)
    checkpoint = (
        CheckpointConfig(enabled=True, interval_s=interval)
        if interval is not None
        else CheckpointConfig()
    )
    return ControllerConfig(
        search_backend=args.search_backend,
        search_jobs=args.jobs,
        checkpoint=checkpoint,
        diagnose=getattr(args, "diagnose", False),
        guards=GuardConfig(enabled=not getattr(args, "unguarded", False)),
        sim=SimulationConfig(fast_forward=getattr(args, "fast_forward", False)),
    )


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="deterministic fault schedule, e.g. "
             "'crash:w3@120,recover:w3@300,disk:w1@60x0.4'")
    parser.add_argument(
        "--control-chaos", metavar="SPEC", default=None,
        help="deterministic control-plane fault schedule (degraded "
             "telemetry / failing deploys), e.g. "
             "'metric_corrupt:opwork@300for60,deploy_fail:@600x2'; "
             "see DESIGN.md §11")
    parser.add_argument(
        "--unguarded", action="store_true",
        help="disable the control-plane guard pipeline (ablation: the "
             "controller trusts whatever --control-chaos feeds it)")
    parser.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="S",
        help="enable the checkpoint/restore model with this interval; "
             "crash recovery then pays restore + replay downtime")


def _chaos_schedule(args: argparse.Namespace) -> Optional[ChaosSchedule]:
    spec = getattr(args, "chaos", None)
    return ChaosSchedule.parse(spec) if spec else None


def _control_chaos_schedule(
    args: argparse.Namespace,
) -> Optional[ControlChaosSchedule]:
    spec = getattr(args, "control_chaos", None)
    return ControlChaosSchedule.parse(spec) if spec else None


def _add_diagnose_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--diagnose", action="store_true",
        help="attach the root-cause diagnosis layer (contention "
             "attribution + backpressure provenance) and print the "
             "ranked report; see DESIGN.md §10")


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a structured trace of the run")
    parser.add_argument("--trace-format", choices=("jsonl", "chrome"),
                        default="jsonl",
                        help="trace file format (chrome loads in "
                             "about://tracing)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write a metric snapshot (.prom suffix for "
                             "Prometheus text exposition, JSON otherwise)")


def _observability(
    args: argparse.Namespace, run_id: str
) -> tuple:
    """Build the (tracer, registry) pair the flags ask for.

    The run id is derived from the command and query — never from a
    clock or uuid — so two identically-parameterised runs produce
    byte-identical sim-domain trace streams. ``--diagnose`` needs a
    tracer even without ``--trace``: the diagnosis aggregates flush
    into trace records, which the report is then built from.
    """
    want_tracer = args.trace or getattr(args, "diagnose", False)
    tracer = Tracer(run_id=run_id) if want_tracer else None
    registry = MetricRegistry() if args.metrics_out else None
    return tracer, registry


def _write_observability(
    args: argparse.Namespace,
    tracer: Optional[Tracer],
    registry: Optional[MetricRegistry],
) -> None:
    if tracer is not None and args.trace:
        if args.trace_format == "chrome":
            tracer.write_chrome(args.trace)
        else:
            tracer.write_jsonl(args.trace)
        print(f"trace: {args.trace} ({len(tracer.records)} records)")
    if registry is not None:
        if args.metrics_out.endswith(".prom"):
            registry.write_prometheus(args.metrics_out)
        else:
            registry.write_json(args.metrics_out)
        print(f"metrics: {args.metrics_out}")


def _print_diagnosis(engine, tracer: Tracer) -> None:
    """Flush a still-attached engine (if any) and print the report."""
    from repro.diagnosis.report import build_report, format_report

    if engine is not None and engine.diagnosis is not None:
        engine.diagnosis.flush(tracer)
    print()
    print(format_report(build_report(tracer.records)))


def cmd_queries(_args: argparse.Namespace) -> int:
    rows = []
    for preset in ALL_QUERIES:
        graph = preset.build()
        rows.append(
            [
                preset.name,
                " -> ".join(graph.topological_order()),
                preset.dominant_dimension,
                round(preset.target_rate),
                round(preset.isolation_rate),
            ]
        )
    print(
        format_table(
            ["query", "operators", "dominant", "motivation rate", "isolation rate"],
            rows,
            title="available queries (rates are records/s per source)",
        )
    )
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    preset = query_by_name(args.query)
    cluster = _cluster(args)
    rate = args.rate or preset.isolation_rate
    strategy = args.strategy
    tracer, registry = _observability(args, f"place/{args.query}")
    controller = CAPSysController(
        preset.build(), cluster,
        strategy="caps" if strategy == "caps" else
        (FlinkDefaultStrategy(seed=args.seed) if strategy == "default"
         else FlinkEvenlyStrategy(seed=args.seed)),
        config=_controller_config(args),
        tracer=tracer,
        registry=registry,
    )
    controller.profile()
    deployment = controller.deploy(
        {op: rate for op in preset.build().sources()}
    )
    print(f"parallelism: {deployment.parallelism}")
    for worker_id in sorted(deployment.plan.worker_ids()):
        tasks = ", ".join(
            uid.split("/", 1)[1] for uid in deployment.plan.tasks_on(worker_id)
        )
        print(f"  worker {worker_id}: {tasks}")
    summary = deployment.engine.run(args.duration, warmup_s=args.duration * 0.4).only
    print(
        f"throughput {summary.throughput:.0f}/{summary.target_rate:.0f} rec/s, "
        f"backpressure {format_percent(summary.backpressure)}, "
        f"latency {summary.latency_s:.2f} s"
    )
    if args.diagnose:
        _print_diagnosis(deployment.engine, tracer)
    _write_observability(args, tracer, registry)
    return 0 if summary.meets_target() else 1


def cmd_compare(args: argparse.Namespace) -> int:
    preset = query_by_name(args.query)
    cluster = _cluster(args)
    rate = args.rate or preset.isolation_rate
    controller = CAPSysController(
        preset.build(), cluster, strategy="caps",
        config=_controller_config(args),
    )
    unit_costs = controller.profile()
    parallelism = controller.initial_parallelism(
        {op: rate for op in preset.build().sources()}
    )
    graph = preset.build().with_parallelism(parallelism)
    src_rates = {(graph.job_id, op): rate for op in graph.sources()}

    tracer, registry = _observability(args, f"compare/{args.query}")
    if registry is not None:
        DEFAULT_CACHE.bind_registry(registry)
    rows = []
    for strategy in (
        CapsStrategy(src_rates, unit_costs_provider=lambda p: unit_costs,
                     backend=args.search_backend, jobs=args.jobs,
                     tracer=tracer, registry=registry),
        FlinkDefaultStrategy(),
        FlinkEvenlyStrategy(),
    ):
        runs = strategy_box_runs(
            graph, cluster, strategy, rate,
            runs=args.runs, duration_s=args.duration,
            warmup_s=args.duration * 0.4,
            tracer=tracer,
            fast_forward=args.fast_forward,
        )
        thpt = box_stats([r.only.throughput for r in runs])
        bp = box_stats([r.only.backpressure for r in runs])
        rows.append(
            [
                strategy.name,
                round(thpt.median),
                round(thpt.minimum),
                round(thpt.maximum),
                format_percent(bp.median),
            ]
        )
    print(
        format_table(
            ["strategy", "thpt med", "thpt min", "thpt max", "bp med"],
            rows,
            title=f"{preset.name} at {rate:.0f} rec/s per source "
                  f"({args.runs} runs per strategy)",
        )
    )
    _write_observability(args, tracer, registry)
    return 0


def cmd_autoscale(args: argparse.Namespace) -> int:
    preset = query_by_name(args.query)
    cluster = _cluster(args)
    graph = preset.build()
    high = args.rate or preset.isolation_rate
    pattern = SquareWaveRate(high=high, low=high * 0.35,
                             period_s=args.duration / 3.0)
    tracer, registry = _observability(args, f"autoscale/{args.query}")
    controller = CAPSysController(
        graph, cluster,
        strategy="caps" if args.strategy == "caps" else FlinkDefaultStrategy(),
        config=_controller_config(args),
        tracer=tracer,
        registry=registry,
    )
    chaos = _chaos_schedule(args)
    control_chaos = _control_chaos_schedule(args)
    result = controller.run_adaptive(
        {op: pattern for op in graph.sources()},
        duration_s=args.duration,
        initial_parallelism={op: 1 for op in graph.operators},
        chaos=chaos,
        control_chaos=control_chaos,
    )
    print(f"{result.rescale_count()} scaling decisions")
    if chaos:
        fault_rescales = sum(
            1 for e in result.events if e.reason.startswith("fault:")
        )
        print(
            f"chaos: {len(chaos)} fault events injected, "
            f"{fault_rescales} fault-triggered rescales"
        )
    if control_chaos:
        guard = controller.last_guard
        if guard is None:
            print(
                f"control-chaos: {len(control_chaos)} events scheduled, "
                f"guards disabled"
            )
        else:
            rounds = ", ".join(
                f"{outcome}={guard.rounds[outcome]}"
                for outcome in sorted(guard.rounds)
            )
            print(
                f"control-chaos: {len(control_chaos)} events scheduled; "
                f"guard rejections {guard.total_rejections}, "
                f"safe-mode entries {guard.safe_mode_entries}; "
                f"rounds: {rounds}"
            )
    rows = [
        [int(t), round(target), round(thpt), tasks]
        for t, target, thpt, tasks in convergence_timeline_rows(
            result, bucket_s=max(60.0, args.duration / 12.0)
        )
    ]
    print(format_table(["t (s)", "target", "throughput", "tasks"], rows))
    if args.diagnose:
        # run_adaptive already flushed every retiring engine's
        # aggregates into the tracer.
        _print_diagnosis(None, tracer)
    _write_observability(args, tracer, registry)
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    preset = query_by_name(args.query)
    cluster = _cluster(args)
    rate = args.rate or preset.target_rate
    graph = preset.build()
    tracer, registry = _observability(args, f"explore/{args.query}")
    if registry is not None:
        DEFAULT_CACHE.bind_registry(registry)
    plans, _model = enumerate_all_plans(graph, cluster, rate)
    print(f"{len(plans)} distinct plans")
    if len(plans) > args.limit:
        plans = sorted(plans, key=lambda cp: cp[0].total())[: args.limit]
        print(f"simulating the {args.limit} lowest-cost plans")
    outcomes = [
        simulate_plan(graph, cluster, plan, rate, duration_s=240, warmup_s=100,
                      tracer=tracer, fast_forward=args.fast_forward)
        for _cost, plan in plans
    ]
    thpt = box_stats([s.throughput for s in outcomes])
    meets = sum(1 for s in outcomes if s.meets_target())
    print(f"throughput spread: {thpt}")
    print(f"plans meeting target: {meets}/{len(outcomes)}")
    _write_observability(args, tracer, registry)
    return 0


def cmd_validate_runtime(args: argparse.Namespace) -> int:
    queries = tuple(q.strip() for q in args.queries.split(",") if q.strip())
    tracer, registry = _observability(
        args, f"validate-runtime/{','.join(queries)}"
    )
    rows = cross_validate(
        queries=queries,
        duration_s=args.duration,
        warmup_s=args.warmup,
        rate_scale=args.rate_scale,
        seed=args.seed,
        tracer=tracer,
        registry=registry,
    )
    print(format_validation(rows))
    _write_observability(args, tracer, registry)
    worst = max(rows, key=lambda r: r.throughput_error)
    if worst.throughput_error > args.max_throughput_error:
        print(
            f"FAIL: {worst.query} throughput error "
            f"{worst.throughput_error:.1%} exceeds "
            f"{args.max_throughput_error:.1%}"
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="CAPSys reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("queries", help="list available queries").set_defaults(
        fn=cmd_queries
    )

    p = sub.add_parser("place", help="profile, size, place, and simulate")
    p.add_argument("query")
    p.add_argument("--strategy", choices=("caps", "default", "evenly"),
                   default="caps")
    p.add_argument("--rate", type=float, default=None,
                   help="target rate per source (defaults to the preset)")
    p.add_argument("--duration", type=float, default=420.0)
    p.add_argument("--seed", type=int, default=0)
    _add_cluster_args(p)
    _add_search_args(p)
    _add_obs_args(p)
    _add_ff_arg(p)
    _add_diagnose_arg(p)
    p.set_defaults(fn=cmd_place)

    p = sub.add_parser("compare", help="CAPS vs Flink baselines")
    p.add_argument("query")
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--rate", type=float, default=None)
    p.add_argument("--duration", type=float, default=420.0)
    _add_cluster_args(p)
    _add_search_args(p)
    _add_obs_args(p)
    _add_ff_arg(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("autoscale", help="adaptive DS2 + placement loop")
    p.add_argument("query")
    p.add_argument("--strategy", choices=("caps", "default"), default="caps")
    p.add_argument("--rate", type=float, default=None)
    p.add_argument("--duration", type=float, default=2700.0)
    _add_cluster_args(p, workers=8)
    _add_search_args(p)
    _add_chaos_args(p)
    _add_obs_args(p)
    _add_ff_arg(p)
    _add_diagnose_arg(p)
    p.set_defaults(fn=cmd_autoscale)

    p = sub.add_parser("explore", help="enumerate the placement space")
    p.add_argument("query")
    p.add_argument("--rate", type=float, default=None)
    p.add_argument("--limit", type=int, default=120,
                   help="max plans to simulate")
    _add_cluster_args(p, workers=4, slots=4)
    _add_obs_args(p)
    _add_ff_arg(p)
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser(
        "validate-runtime",
        help="cross-validate the fluid model against the sharded runtime",
    )
    p.add_argument("--queries", default="q1,q2,q6",
                   help="comma-separated subset of q1,q2,q6")
    p.add_argument("--duration", type=float, default=12.0)
    p.add_argument("--warmup", type=float, default=2.0)
    p.add_argument("--rate-scale", type=float, default=1.0,
                   help="multiply the per-query target rates")
    p.add_argument("--seed", type=int, default=7,
                   help="Nexmark generator seed")
    p.add_argument("--max-throughput-error", type=float, default=0.10,
                   metavar="FRAC",
                   help="exit 1 if any query's relative throughput error "
                        "exceeds this fraction")
    _add_obs_args(p)
    p.set_defaults(fn=cmd_validate_runtime)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
