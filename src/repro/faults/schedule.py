"""Deterministic chaos schedules: timed fault events for one run.

A chaos schedule is an explicit, ordered list of :class:`FaultEvent`
records — there is no hidden randomness. Determinism is the whole
point: two runs driven by the same schedule (and the same simulator
seed) must be byte-identical in the sim-domain trace, which is what the
CI chaos gate asserts. Anything stochastic (fuzzed fault times, random
victim selection) must be resolved *outside* the schedule, producing a
concrete event list that can be replayed.

Events come in two families:

- **structural** (``crash``, ``recover``, ``slots``): they change which
  workers/slots exist, so the controller must replan around them;
- **degradation** (``disk``, ``net``, ``cpu``): a straggler keeps its
  slots but loses a fraction of one capacity — the magnitude is the
  *remaining* fraction (``x0.5`` halves the bandwidth).

The one-line spec grammar wired through ``--chaos`` is a comma-joined
list of ``kind:w<worker>@<time>[x<magnitude>]`` tokens, e.g.::

    crash:w3@120,recover:w3@300,disk:w1@200x0.5,slots:w2@100x2
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

#: Recognised fault kinds, in canonical order (used for deterministic
#: tie-breaking of same-time events).
FAULT_KINDS = ("crash", "recover", "slots", "disk", "net", "cpu")

#: Kinds that change the set of usable workers/slots; the controller
#: handles these (replan, blacklisting), not the engine capacities.
STRUCTURAL_KINDS = ("crash", "recover", "slots")

#: Kinds that scale one capacity dimension of a live worker.
DEGRADE_KINDS = ("disk", "net", "cpu")

#: Default remaining-capacity fraction when a degrade token omits ``x``.
DEFAULT_DEGRADE_MAGNITUDE = 0.5


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault (or recovery) aimed at one worker.

    Attributes:
        time_s: Absolute simulated time the event fires.
        kind: One of :data:`FAULT_KINDS`.
        worker_id: The victim worker's id.
        magnitude: Remaining capacity fraction in (0, 1] for degrade
            kinds; the number of slots lost (>= 1) for ``slots``;
            ignored (1.0) for ``crash``/``recover``.
    """

    time_s: float
    kind: str
    worker_id: int
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.time_s < 0:
            raise ValueError("fault time must be non-negative")
        if self.worker_id < 0:
            raise ValueError("worker_id must be non-negative")
        if self.kind in DEGRADE_KINDS and not 0.0 < self.magnitude <= 1.0:
            raise ValueError(
                f"{self.kind} magnitude is the remaining capacity fraction "
                f"and must be in (0, 1]; got {self.magnitude}"
            )
        if self.kind == "slots":
            if self.magnitude < 1 or self.magnitude != int(self.magnitude):
                raise ValueError(
                    f"slots magnitude is the number of slots lost and must "
                    f"be a positive integer; got {self.magnitude}"
                )

    @property
    def structural(self) -> bool:
        return self.kind in STRUCTURAL_KINDS

    def spec(self) -> str:
        """The token form that :meth:`ChaosSchedule.parse` round-trips."""
        base = f"{self.kind}:w{self.worker_id}@{self.time_s:g}"
        if self.kind in DEGRADE_KINDS or self.kind == "slots":
            return f"{base}x{self.magnitude:g}"
        return base


def _sort_key(event: FaultEvent) -> Tuple[float, int, int]:
    return (event.time_s, event.worker_id, FAULT_KINDS.index(event.kind))


class ChaosSchedule:
    """An immutable, time-sorted sequence of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=_sort_key)
        )

    @classmethod
    def parse(cls, spec: str) -> "ChaosSchedule":
        """Parse the ``--chaos`` one-liner grammar.

        Tokens are ``kind:w<worker>@<time>`` with an optional
        ``x<magnitude>`` suffix, joined by commas. Degrade tokens
        without a magnitude default to ``x0.5``.

        Malformed tokens — unknown kinds, bad workers/times/magnitudes,
        a magnitude on ``crash``/``recover`` (which take none), or a
        duplicate of an earlier token's kind/worker/time — raise a
        :class:`ValueError` naming the offending token.
        """
        events = []
        seen: dict = {}
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            try:
                kind, rest = token.split(":", 1)
                worker, timing = rest.split("@", 1)
            except ValueError:
                raise ValueError(
                    f"bad chaos token {token!r}; expected "
                    f"kind:w<worker>@<time>[x<magnitude>]"
                ) from None
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} in chaos token {token!r}; "
                    f"expected one of {FAULT_KINDS}"
                )
            if not worker.startswith("w") or not worker[1:].isdigit():
                raise ValueError(
                    f"bad worker {worker!r} in chaos token {token!r}; "
                    f"expected w<id>"
                )
            worker_id = int(worker[1:])
            if "x" in timing:
                if kind in ("crash", "recover"):
                    raise ValueError(
                        f"{kind} takes no x<magnitude>; got chaos token "
                        f"{token!r}"
                    )
                time_str, mag_str = timing.split("x", 1)
                try:
                    magnitude = float(mag_str)
                except ValueError:
                    raise ValueError(
                        f"bad magnitude {mag_str!r} in chaos token {token!r}"
                    ) from None
            else:
                time_str = timing
                magnitude = (
                    DEFAULT_DEGRADE_MAGNITUDE if kind in DEGRADE_KINDS else 1.0
                )
            try:
                time_s = float(time_str)
            except ValueError:
                raise ValueError(
                    f"bad time {time_str!r} in chaos token {token!r}"
                ) from None
            key = (kind, worker_id, time_s)
            if key in seen:
                raise ValueError(
                    f"duplicate chaos token {token!r} (same kind/worker/time "
                    f"as {seen[key]!r})"
                )
            seen[key] = token
            try:
                events.append(FaultEvent(time_s, kind, worker_id, magnitude))
            except ValueError as exc:
                raise ValueError(f"bad chaos token {token!r}: {exc}") from None
        return cls(events)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return self._events

    def spec(self) -> str:
        """Canonical spec string (``parse(s.spec())`` equals ``s``)."""
        return ",".join(event.spec() for event in self._events)

    def worker_ids(self) -> Tuple[int, ...]:
        """Sorted, de-duplicated victim worker ids."""
        return tuple(sorted({event.worker_id for event in self._events}))

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChaosSchedule):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaosSchedule({self.spec()!r})"
