"""Engine-side fault injection and shared fault observability.

Two consumers replay a :class:`~repro.faults.schedule.ChaosSchedule`:

- the **adaptive controller** processes events itself (it must stop the
  engine at each event, replan around crashes, and account recovery
  downtime), applying capacity changes through
  :meth:`FluidSimulation.apply_worker_factors`;
- a **standalone engine** (``cli place --chaos``, static-placement
  experiments, tests) attaches an :class:`EngineFaultDriver`, which the
  engine polls every tick: due events become capacity/alive mutations
  with no replanning — the "no controller" ablation.

Both paths report each injected event through :func:`observe_fault`, so
the trace event names and metric labels are identical regardless of who
replayed the schedule — the CI chaos gate diffs these records.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.dataflow.cluster import Cluster
from repro.faults.schedule import ChaosSchedule, FaultEvent, _sort_key
from repro.observability import MetricRegistry, Tracer


def observe_fault(
    event: FaultEvent,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricRegistry] = None,
) -> None:
    """Emit the canonical trace event + metric for one injected fault.

    The trace record lives in the ``sim`` clock domain at the event's
    scheduled time: fault injection is part of the simulated world, so
    identically-seeded runs must reproduce it byte-for-byte.
    """
    if tracer is not None and tracer.enabled:
        tracer.event(
            "sim",
            f"fault.{event.kind}",
            event.time_s,
            cat="fault",
            args={"worker": event.worker_id, "magnitude": event.magnitude},
        )
    if registry is not None:
        registry.counter(
            "faults_injected_total",
            labels={"kind": event.kind},
            help="Chaos fault events injected, by kind.",
        ).inc()


class EngineFaultDriver:
    """Replays chaos events onto one engine as capacity mutations.

    Args:
        schedule: A :class:`ChaosSchedule` or an iterable of events.
        cluster: The cluster the engine was built on; every event must
            name one of its workers.
        tracer: Optional tracer for the ``fault.*`` sim-domain events.
        registry: Optional registry for the injection counters.

    The driver holds per-worker factor state: ``crash`` marks a worker
    dead (the engine zeroes its demand), ``recover`` restores it to
    pristine, degrade kinds keep the worst remaining fraction per
    dimension, and ``slots`` is a placement-level event with no engine
    capacity effect (still traced). :meth:`poll` is called by the engine
    at the start of every tick with the absolute simulated time and
    returns the updated factor arrays only when an event fired.
    """

    def __init__(
        self,
        schedule: Union[ChaosSchedule, Iterable[FaultEvent]],
        cluster: Cluster,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        events = (
            schedule.events
            if isinstance(schedule, ChaosSchedule)
            else tuple(sorted(schedule, key=_sort_key))
        )
        self._index = {w.worker_id: i for i, w in enumerate(cluster.workers)}
        for event in events:
            if event.worker_id not in self._index:
                raise KeyError(
                    f"chaos event {event.spec()!r} names a worker not in "
                    f"the cluster (ids: {sorted(self._index)})"
                )
        self._pending = deque(events)
        n = len(cluster.workers)
        self._cpu = np.ones(n)
        self._disk = np.ones(n)
        self._net = np.ones(n)
        self._alive = np.ones(n, dtype=bool)
        self.tracer = tracer
        self.registry = registry
        #: Events already fired, in firing order (diagnostics/tests).
        self.applied: List[FaultEvent] = []

    def poll(
        self, time_s: float
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Fire every event due at ``time_s``; factors when any fired."""
        fired = False
        while self._pending and self._pending[0].time_s <= time_s + 1e-9:
            self._apply(self._pending.popleft())
            fired = True
        if not fired:
            return None
        return (
            self._cpu.copy(),
            self._disk.copy(),
            self._net.copy(),
            self._alive.copy(),
        )

    def _apply(self, event: FaultEvent) -> None:
        i = self._index[event.worker_id]
        if event.kind == "crash":
            self._alive[i] = False
        elif event.kind == "recover":
            self._alive[i] = True
            self._cpu[i] = 1.0
            self._disk[i] = 1.0
            self._net[i] = 1.0
        elif event.kind == "cpu":
            self._cpu[i] = min(self._cpu[i], event.magnitude)
        elif event.kind == "disk":
            self._disk[i] = min(self._disk[i], event.magnitude)
        elif event.kind == "net":
            self._net[i] = min(self._net[i], event.magnitude)
        # "slots" changes the placement search space only; no capacity
        # effect on a running engine, but the injection is still traced.
        self.applied.append(event)
        observe_fault(event, self.tracer, self.registry)

    @property
    def exhausted(self) -> bool:
        return not self._pending

    def next_event_time(self) -> Optional[float]:
        """Absolute time of the next pending event, ``None`` when drained.

        The fast-forward engine uses this as one event-horizon source:
        a leap must stop at (conservatively, just before) the tick that
        would fire this event.
        """
        if not self._pending:
            return None
        return self._pending[0].time_s
