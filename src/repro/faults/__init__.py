"""Fault injection & recovery: the chaos layer (DESIGN.md section 8).

Deterministic chaos schedules (:mod:`repro.faults.schedule`), cluster
health bookkeeping for degraded-mode control
(:mod:`repro.faults.health`), the checkpoint/restore cost model
(:mod:`repro.faults.checkpoint`), and the engine-side fault driver plus
shared fault observability (:mod:`repro.faults.injector`).
"""

from repro.faults.checkpoint import CheckpointConfig, recovery_downtime
from repro.faults.health import ClusterHealth
from repro.faults.injector import EngineFaultDriver, observe_fault
from repro.faults.schedule import (
    DEGRADE_KINDS,
    FAULT_KINDS,
    STRUCTURAL_KINDS,
    ChaosSchedule,
    FaultEvent,
)

__all__ = [
    "ChaosSchedule",
    "CheckpointConfig",
    "ClusterHealth",
    "DEGRADE_KINDS",
    "EngineFaultDriver",
    "FAULT_KINDS",
    "FaultEvent",
    "STRUCTURAL_KINDS",
    "observe_fault",
    "recovery_downtime",
]
