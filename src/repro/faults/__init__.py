"""Fault injection & recovery: the chaos layer (DESIGN.md section 8).

Deterministic chaos schedules (:mod:`repro.faults.schedule`), cluster
health bookkeeping for degraded-mode control
(:mod:`repro.faults.health`), the checkpoint/restore cost model
(:mod:`repro.faults.checkpoint`), and the engine-side fault driver plus
shared fault observability (:mod:`repro.faults.injector`).
"""

from repro.faults.checkpoint import CheckpointConfig, recovery_downtime
from repro.faults.health import ClusterHealth
from repro.faults.injector import EngineFaultDriver, observe_fault
from repro.faults.schedule import (
    DEGRADE_KINDS,
    FAULT_KINDS,
    STRUCTURAL_KINDS,
    ChaosSchedule,
    FaultEvent,
)
from repro.faults.telemetry import (
    CONTROL_FAULT_KINDS,
    ControlChaosSchedule,
    ControlChaosView,
    ControlFaultEvent,
    observe_control_fault,
)

__all__ = [
    "CONTROL_FAULT_KINDS",
    "ChaosSchedule",
    "CheckpointConfig",
    "ClusterHealth",
    "ControlChaosSchedule",
    "ControlChaosView",
    "ControlFaultEvent",
    "DEGRADE_KINDS",
    "EngineFaultDriver",
    "FAULT_KINDS",
    "FaultEvent",
    "STRUCTURAL_KINDS",
    "observe_control_fault",
    "observe_fault",
    "recovery_downtime",
]
