"""Cluster health bookkeeping for degraded-mode control.

The controller keeps one :class:`ClusterHealth` per adaptive run and
feeds every structural/degradation fault event into it. The health
object then answers the two questions degraded-mode control needs:

1. **What can the engine run on?** :meth:`engine_cluster` — the
   surviving workers with their *original* capacities (dead workers and
   zero-slot workers removed, lost slots subtracted). Capacity
   degradations are applied to the running engine separately (via
   :meth:`factor_arrays`), never baked into the engine's cluster, so a
   later ``recover`` can restore the full capacity without rebuilding
   the baseline.
2. **What should placement see?** :meth:`placement_cluster` — the same
   surviving workers but with degraded capacities folded into the
   specs, so the CAPS cost model naturally steers load away from
   stragglers and failed workers are blacklisted from the search space
   simply by not existing.

Degradation factors are monotone: repeated degrade events keep the
worst (smallest) remaining fraction per dimension, and only an explicit
``recover`` resets a worker to pristine. This keeps replay order-robust
for same-time events and matches the "capacity never silently improves"
intuition of real incidents.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

import numpy as np

from repro.dataflow.cluster import Cluster, Worker
from repro.faults.schedule import DEGRADE_KINDS, FaultEvent

#: Degrade kind -> the WorkerSpec field it scales.
_DIM_FIELDS = {
    "cpu": "cpu_capacity",
    "disk": "disk_bandwidth",
    "net": "network_bandwidth",
}


class ClusterHealth:
    """Mutable per-worker health state over one base cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.base = cluster
        self._alive: Dict[int, bool] = {w.worker_id: True for w in cluster.workers}
        self._slots_lost: Dict[int, int] = {w.worker_id: 0 for w in cluster.workers}
        self._factors: Dict[int, Dict[str, float]] = {
            w.worker_id: {dim: 1.0 for dim in DEGRADE_KINDS}
            for w in cluster.workers
        }

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def apply(self, event: FaultEvent) -> None:
        """Fold one fault event into the health state."""
        wid = event.worker_id
        if wid not in self._alive:
            raise KeyError(
                f"chaos event {event.spec()!r} names a worker not in the "
                f"cluster (ids: {sorted(self._alive)})"
            )
        if event.kind == "crash":
            self._alive[wid] = False
        elif event.kind == "recover":
            self._alive[wid] = True
            self._slots_lost[wid] = 0
            self._factors[wid] = {dim: 1.0 for dim in DEGRADE_KINDS}
        elif event.kind == "slots":
            self._slots_lost[wid] += int(event.magnitude)
        else:  # degrade: keep the worst remaining fraction per dimension
            current = self._factors[wid][event.kind]
            self._factors[wid][event.kind] = min(current, event.magnitude)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_alive(self, worker_id: int) -> bool:
        return self._alive[worker_id]

    @property
    def failed_workers(self) -> Tuple[int, ...]:
        return tuple(
            sorted(wid for wid, alive in self._alive.items() if not alive)
        )

    def slots_of(self, worker_id: int) -> int:
        """Usable slots of one worker (0 when dead or fully slot-lost)."""
        if not self._alive[worker_id]:
            return 0
        base = self.base.worker(worker_id).slots
        return max(0, base - self._slots_lost[worker_id])

    def total_slots(self) -> int:
        return sum(self.slots_of(w.worker_id) for w in self.base.workers)

    def factor_of(self, worker_id: int, dim: str) -> float:
        return self._factors[worker_id][dim]

    def degraded(self) -> bool:
        """Whether any live worker carries a capacity degradation."""
        return any(
            factor < 1.0
            for wid, factors in self._factors.items()
            if self._alive[wid]
            for factor in factors.values()
        )

    def pristine(self) -> bool:
        """Whether the cluster is back to (or still at) full health."""
        return (
            all(self._alive.values())
            and all(lost == 0 for lost in self._slots_lost.values())
            and not self.degraded()
        )

    # ------------------------------------------------------------------
    # Cluster views
    # ------------------------------------------------------------------
    def _survivors(self) -> List[Worker]:
        survivors = []
        for worker in self.base.workers:
            slots = self.slots_of(worker.worker_id)
            if slots > 0:
                survivors.append(
                    Worker(worker.worker_id, worker.spec.with_slots(slots))
                )
        if not survivors:
            raise RuntimeError(
                "no usable workers survive the injected faults; the "
                "deployment cannot be replanned"
            )
        return survivors

    def engine_cluster(self) -> Cluster:
        """Surviving workers at original capacities (engine baseline)."""
        return Cluster(self._survivors(), self.base.link_latency_s)

    def placement_cluster(self) -> Cluster:
        """Surviving workers with degradations folded into the specs.

        This is what the placement search sees: a straggler's reduced
        disk/NIC/CPU capacity raises its cost contributions, so CAPS
        avoids piling contention onto it, while ``flink_evenly`` (which
        only counts slots) stays blind — exactly the gap
        ``benchmarks/bench_fault_recovery.py`` measures.
        """
        workers = []
        for worker in self._survivors():
            factors = self._factors[worker.worker_id]
            spec = worker.spec
            changes = {
                _DIM_FIELDS[dim]: getattr(spec, _DIM_FIELDS[dim]) * factor
                for dim, factor in factors.items()
                if factor < 1.0
            }
            if changes:
                spec = replace(spec, **changes)
            workers.append(Worker(worker.worker_id, spec))
        return Cluster(workers, self.base.link_latency_s)

    def factor_arrays(
        self, cluster: Cluster
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(cpu, disk, net, alive) arrays in ``cluster``'s worker order.

        Shaped for :meth:`FluidSimulation.apply_worker_factors`; workers
        of ``cluster`` unknown to this health object default to healthy.
        """
        cpu, disk, net, alive = [], [], [], []
        for worker in cluster.workers:
            factors = self._factors.get(
                worker.worker_id, {dim: 1.0 for dim in DEGRADE_KINDS}
            )
            cpu.append(factors["cpu"])
            disk.append(factors["disk"])
            net.append(factors["net"])
            alive.append(self._alive.get(worker.worker_id, True))
        return (
            np.asarray(cpu, dtype=float),
            np.asarray(disk, dtype=float),
            np.asarray(net, dtype=float),
            np.asarray(alive, dtype=bool),
        )
