"""Checkpoint/restore cost model.

Flink's fault tolerance rests on periodic checkpoints: state backends
upload their delta to durable storage every interval, and recovery from
a worker loss restores the last completed checkpoint and replays the
stream since. Two costs follow, and both are modelled here:

1. **Steady-state checkpoint cost**: uploading the dirty state competes
   with foreground state-backend I/O for the worker's disk bandwidth.
   The engine accumulates per-worker dirty bytes, snapshots them at
   every interval boundary, and drains the upload through the shared
   :class:`~repro.simulator.state_backend.DiskModel` at up to
   ``write_bandwidth_share`` of the disk — so checkpoint-heavy state
   growth visibly eats into throughput, as it does in production.
2. **Recovery downtime**: when a worker is lost, the job restarts from
   the last checkpoint. Downtime = base restart time (the controller's
   ``rescale_downtime_s``, same stop/restart machinery as a rescale)
   + durable state of the lost worker / restore bandwidth (surviving
   workers recover locally, Flink's local recovery) + replay of the
   progress made since the last checkpoint, scaled by
   ``replay_factor`` (replay runs faster than real time). The sum is
   capped at ``max_recovery_s``.

The model is fluid like the rest of the simulator: a checkpoint
"completes" at its trigger time and its upload cost is amortised over
the following ticks — alignment costs and barrier skew are below the
tick resolution and are not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import Bytes, BytesPerSecond, Seconds

MIB = 1024.0 ** 2


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpointing knobs; ``enabled=False`` (default) is cost-free.

    Attributes:
        enabled: Master switch. Disabled, the engine pays no checkpoint
            cost and recovery falls back to the plain restart downtime.
        interval_s: Checkpoint trigger period.
        write_bandwidth_share: Cap on the fraction of a worker's disk
            bandwidth the checkpoint upload may demand per tick.
        restore_bandwidth_bytes_per_s: Bandwidth at which a replacement
            fetches the lost worker's durable state from remote storage.
        replay_factor: Seconds of replay per second of progress since
            the last checkpoint (< 1: replay outruns real time).
        max_recovery_s: Upper bound on the modelled recovery downtime.
    """

    enabled: bool = False
    interval_s: Seconds = 30.0
    write_bandwidth_share: float = 0.2
    restore_bandwidth_bytes_per_s: BytesPerSecond = 200 * MIB
    replay_factor: float = 0.5
    max_recovery_s: Seconds = 300.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0.0 < self.write_bandwidth_share <= 1.0:
            raise ValueError("write_bandwidth_share must be in (0, 1]")
        if self.restore_bandwidth_bytes_per_s <= 0:
            raise ValueError("restore_bandwidth_bytes_per_s must be positive")
        if self.replay_factor < 0:
            raise ValueError("replay_factor must be non-negative")
        if self.max_recovery_s <= 0:
            raise ValueError("max_recovery_s must be positive")


def recovery_downtime(
    config: CheckpointConfig,
    restart_s: Seconds,
    restore_bytes: Bytes,
    time_since_checkpoint_s: Seconds,
) -> Seconds:
    """Modelled downtime for recovering from a lost worker.

    Args:
        config: The checkpoint configuration.
        restart_s: Base stop/redeploy/restart time (the controller's
            plain rescale downtime).
        restore_bytes: Durable state of the lost worker that must be
            re-fetched from remote storage.
        time_since_checkpoint_s: Progress since the last completed
            checkpoint that must be replayed.

    Returns:
        The total downtime in seconds; ``restart_s`` alone when
        checkpointing is disabled, never below ``restart_s`` and never
        above ``max(restart_s, config.max_recovery_s)``.
    """
    if restart_s < 0:
        raise ValueError("restart_s must be non-negative")
    if not config.enabled:
        return restart_s
    restore_s = max(0.0, restore_bytes) / config.restore_bandwidth_bytes_per_s
    replay_s = config.replay_factor * max(0.0, time_since_checkpoint_s)
    return min(restart_s + restore_s + replay_s, max(restart_s, config.max_recovery_s))
