"""Control-plane chaos: degraded telemetry and failing reconfigurations.

The data-plane chaos layer (:mod:`repro.faults.schedule`) breaks the
*world* the job runs in; this module breaks what the **controller
observes and commands** while the world stays healthy. The distinction
matters because the adaptive loop is only as good as its inputs: DS2
consumes windowed rate metrics, CAPS consumes profiled unit costs, and
reconfigurations go through a deploy step that real clusters fail or
stall all the time. A :class:`ControlChaosSchedule` perturbs exactly
those three surfaces — metrics, profiles, deployments — and never
touches engine truth, so a run's *physical* outcome degrades only
through the controller's own bad (or well-guarded) reactions.

Like the data-plane grammar, schedules are explicit ordered event lists
with no hidden randomness: identical schedules against identical seeds
must reproduce byte-identical sim-domain traces, with or without
``--fast-forward``.

Grammar (comma-joined tokens, wired through ``--control-chaos``)::

    metric_drop:op<name>@<t>[for<d>]          # observation lost
    metric_corrupt:op<name>@<t>[for<d>][x<m>] # NaN (no x) or x<m>-scaled
    profile_stale:@<t>[for<d>]                # telemetry frozen at last round
    deploy_fail:@<t>[xN]                      # next N deploy attempts fail
    deploy_delay:@<t>x<lag>                   # next deploy pays <lag> s extra

Window semantics: ``for<d>`` makes the fault bite on every controller
observation in ``[t, t+d]``; without it the fault is a one-shot that
bites on the first observation (or deploy attempt) at or after ``t``
and is then consumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.observability import MetricRegistry, Tracer
from repro.scaling.rates import OperatorRates
from repro.units import Seconds

#: Recognised control-fault kinds, in canonical order (deterministic
#: tie-breaking of same-time events).
CONTROL_FAULT_KINDS = (
    "metric_drop",
    "metric_corrupt",
    "profile_stale",
    "deploy_fail",
    "deploy_delay",
)

#: Kinds that perturb one operator's observed rate metrics.
METRIC_KINDS = ("metric_drop", "metric_corrupt")

#: Kinds that perturb the deploy step of a reconfiguration.
DEPLOY_KINDS = ("deploy_fail", "deploy_delay")


@dataclass(frozen=True)
class ControlFaultEvent:
    """One timed control-plane fault.

    Attributes:
        time_s: Absolute simulated time from which the fault is armed.
        kind: One of :data:`CONTROL_FAULT_KINDS`.
        operator: Target operator name for :data:`METRIC_KINDS`;
            ``None`` for the untargeted kinds.
        duration_s: Window length for metric/staleness kinds; ``0``
            means one-shot (first observation at/after ``time_s``).
        magnitude: Kind-specific payload — the true-rate scale factor
            for ``metric_corrupt`` (``None`` injects NaN), the failure
            count for ``deploy_fail`` (default 1), the extra downtime
            seconds for ``deploy_delay`` (required).
    """

    time_s: Seconds
    kind: str
    operator: Optional[str] = None
    duration_s: Seconds = 0.0
    magnitude: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in CONTROL_FAULT_KINDS:
            raise ValueError(
                f"unknown control-fault kind {self.kind!r}; expected one "
                f"of {CONTROL_FAULT_KINDS}"
            )
        if not math.isfinite(self.time_s) or self.time_s < 0:
            raise ValueError("control-fault time must be finite and non-negative")
        if not math.isfinite(self.duration_s) or self.duration_s < 0:
            raise ValueError(
                "control-fault duration must be finite and non-negative"
            )
        if self.kind in METRIC_KINDS:
            if not self.operator:
                raise ValueError(f"{self.kind} requires an op<name> target")
        elif self.operator is not None:
            raise ValueError(f"{self.kind} does not take an operator target")
        if self.kind in DEPLOY_KINDS and self.duration_s != 0.0:
            raise ValueError(f"{self.kind} does not take a for<duration> window")
        if self.magnitude is not None:
            if not math.isfinite(self.magnitude) or self.magnitude <= 0:
                raise ValueError(
                    f"{self.kind} magnitude must be finite and positive; "
                    f"got {self.magnitude}"
                )
        if self.kind == "deploy_fail" and self.magnitude is not None:
            if self.magnitude != int(self.magnitude):
                raise ValueError(
                    f"deploy_fail count must be a positive integer; "
                    f"got {self.magnitude}"
                )
        if self.kind == "deploy_delay" and self.magnitude is None:
            raise ValueError("deploy_delay requires an x<lag> in seconds")
        if self.kind in ("metric_drop", "profile_stale") and self.magnitude is not None:
            raise ValueError(f"{self.kind} does not take an x<magnitude>")

    @property
    def fail_count(self) -> int:
        """Deploy attempts this ``deploy_fail`` event makes fail."""
        if self.kind != "deploy_fail":
            raise ValueError("fail_count is only defined for deploy_fail")
        return 1 if self.magnitude is None else int(self.magnitude)

    def spec(self) -> str:
        """The token form :meth:`ControlChaosSchedule.parse` round-trips."""
        target = f"op{self.operator}" if self.operator else ""
        base = f"{self.kind}:{target}@{self.time_s:g}"
        if self.duration_s > 0:
            base += f"for{self.duration_s:g}"
        if self.magnitude is not None:
            base += f"x{self.magnitude:g}"
        return base


def _sort_key(event: ControlFaultEvent) -> Tuple[float, int, str]:
    return (
        event.time_s,
        CONTROL_FAULT_KINDS.index(event.kind),
        event.operator or "",
    )


def _parse_float(text: str, what: str, token: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"bad {what} {text!r} in control-chaos token {token!r}") from None
    return value


class ControlChaosSchedule:
    """An immutable, time-sorted sequence of control-plane faults."""

    def __init__(self, events: Iterable[ControlFaultEvent] = ()) -> None:
        self._events: Tuple[ControlFaultEvent, ...] = tuple(
            sorted(events, key=_sort_key)
        )

    @classmethod
    def parse(cls, spec: str) -> "ControlChaosSchedule":
        """Parse the ``--control-chaos`` one-liner grammar.

        Malformed tokens and duplicates (same kind, target, and time)
        raise a :class:`ValueError` naming the offending token.
        """
        events: List[ControlFaultEvent] = []
        seen: Dict[Tuple[str, Optional[str], float], str] = {}
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            try:
                kind, rest = token.split(":", 1)
            except ValueError:
                raise ValueError(
                    f"bad control-chaos token {token!r}; expected "
                    f"kind:[op<name>]@<time>[for<duration>][x<magnitude>]"
                ) from None
            if kind not in CONTROL_FAULT_KINDS:
                raise ValueError(
                    f"unknown control-fault kind {kind!r} in token {token!r}; "
                    f"expected one of {CONTROL_FAULT_KINDS}"
                )
            try:
                target, timing = rest.split("@", 1)
            except ValueError:
                raise ValueError(
                    f"missing @<time> in control-chaos token {token!r}"
                ) from None
            operator: Optional[str] = None
            if target:
                if not target.startswith("op") or len(target) <= 2:
                    raise ValueError(
                        f"bad target {target!r} in control-chaos token "
                        f"{token!r}; expected op<name>"
                    )
                operator = target[2:]
            magnitude: Optional[float] = None
            duration_s = 0.0
            if "x" in timing:
                timing, mag_str = timing.split("x", 1)
                magnitude = _parse_float(mag_str, "magnitude", token)
            if "for" in timing:
                time_str, dur_str = timing.split("for", 1)
                duration_s = _parse_float(dur_str, "duration", token)
            else:
                time_str = timing
            time_s = _parse_float(time_str, "time", token)
            key = (kind, operator, time_s)
            if key in seen:
                raise ValueError(
                    f"duplicate control-chaos token {token!r} "
                    f"(same kind/target/time as {seen[key]!r})"
                )
            seen[key] = token
            try:
                events.append(
                    ControlFaultEvent(
                        time_s=time_s,
                        kind=kind,
                        operator=operator,
                        duration_s=duration_s,
                        magnitude=magnitude,
                    )
                )
            except ValueError as exc:
                raise ValueError(
                    f"bad control-chaos token {token!r}: {exc}"
                ) from None
        return cls(events)

    @property
    def events(self) -> Tuple[ControlFaultEvent, ...]:
        return self._events

    def spec(self) -> str:
        """Canonical spec string (``parse(s.spec())`` equals ``s``)."""
        return ",".join(event.spec() for event in self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __iter__(self) -> Iterator[ControlFaultEvent]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ControlChaosSchedule):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ControlChaosSchedule({self.spec()!r})"


def observe_control_fault(
    event: ControlFaultEvent,
    time_s: Seconds,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricRegistry] = None,
) -> None:
    """Emit the canonical trace event + metric for one control fault.

    The trace record lands at the simulated time the fault first
    *bites* (its first observation or deploy attempt), which is a pure
    function of the schedule and the controller's policy ticks — so
    identically-parameterised runs reproduce it byte-for-byte, with or
    without fast-forward.
    """
    if tracer is not None and tracer.enabled:
        args: Dict[str, object] = {"armed_at_s": event.time_s}
        if event.operator is not None:
            args["operator"] = event.operator
        if event.duration_s > 0:
            args["duration_s"] = event.duration_s
        if event.magnitude is not None:
            args["magnitude"] = event.magnitude
        tracer.event(
            "sim",
            f"control_fault.{event.kind}",
            time_s,
            cat="control_fault",
            args=args,
        )
    if registry is not None:
        registry.counter(
            "control_faults_injected_total",
            labels={"kind": event.kind},
            help="Control-plane chaos events that bit, by kind.",
        ).inc()


class _ArmedEvent:
    """One scheduled event plus its consumption state."""

    __slots__ = ("event", "consumed", "observed", "remaining")

    def __init__(self, event: ControlFaultEvent) -> None:
        self.event = event
        self.consumed = False  # one-shots: already bitten
        self.observed = False  # trace/counter emitted
        self.remaining = (
            event.fail_count if event.kind == "deploy_fail" else 0
        )


class ControlChaosView:
    """Replays a :class:`ControlChaosSchedule` onto one adaptive run.

    The controller consults the view at two points of every control
    round: :meth:`perturb_rates` on the telemetry it is about to hand
    to DS2, and :meth:`deploy_attempt` before starting a new engine.
    The view mutates only what the controller *sees*; engine truth is
    never touched, so any physical degradation that follows is the
    controller's own doing.
    """

    def __init__(
        self,
        schedule: ControlChaosSchedule,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.schedule = schedule
        self.tracer = tracer
        self.registry = registry
        self._metric = [
            _ArmedEvent(e) for e in schedule if e.kind in METRIC_KINDS
        ]
        self._stale = [
            _ArmedEvent(e) for e in schedule if e.kind == "profile_stale"
        ]
        self._fail = [
            _ArmedEvent(e) for e in schedule if e.kind == "deploy_fail"
        ]
        self._delay = [
            _ArmedEvent(e) for e in schedule if e.kind == "deploy_delay"
        ]
        self._last_rates: Optional[Dict[Tuple[str, str], OperatorRates]] = None
        #: ``(bite_time_s, event)`` pairs in bite order (diagnostics).
        self.applied: List[Tuple[float, ControlFaultEvent]] = []

    # ------------------------------------------------------------------
    def _bite(self, armed: _ArmedEvent, time_s: float) -> None:
        self.applied.append((time_s, armed.event))
        if not armed.observed:
            armed.observed = True
            observe_control_fault(armed.event, time_s, self.tracer, self.registry)

    def _active(self, armed: _ArmedEvent, time_s: float) -> bool:
        """Whether a metric/staleness event bites at this observation."""
        event = armed.event
        if event.duration_s > 0:
            return event.time_s - 1e-9 <= time_s <= event.time_s + event.duration_s + 1e-9
        if armed.consumed or time_s < event.time_s - 1e-9:
            return False
        armed.consumed = True
        return True

    # ------------------------------------------------------------------
    def stale_at(self, time_s: Seconds) -> bool:
        """Whether a ``profile_stale`` window covers this observation."""
        stale = False
        for armed in self._stale:
            if self._active(armed, time_s):
                self._bite(armed, time_s)
                stale = True
        return stale

    def perturb_rates(
        self,
        rates: Dict[Tuple[str, str], OperatorRates],
        time_s: Seconds,
        job_id: str,
    ) -> Dict[Tuple[str, str], OperatorRates]:
        """What the controller observes instead of the true telemetry."""
        if self.stale_at(time_s):
            # Frozen telemetry: the last delivered observation repeats.
            if self._last_rates is not None:
                return dict(self._last_rates)
            return dict(rates)
        perturbed = dict(rates)
        for armed in self._metric:
            if not self._active(armed, time_s):
                continue
            event = armed.event
            key = (job_id, event.operator)
            self._bite(armed, time_s)
            if key not in perturbed:
                continue
            if event.kind == "metric_drop":
                del perturbed[key]
            else:  # metric_corrupt
                sample = perturbed[key]
                if event.magnitude is None:
                    perturbed[key] = OperatorRates(
                        true_rate_per_task=float("nan"),
                        observed_rate=float("nan"),
                        observed_output_rate=float("nan"),
                        busy_fraction=float("nan"),
                    )
                else:
                    perturbed[key] = OperatorRates(
                        true_rate_per_task=sample.true_rate_per_task
                        * event.magnitude,
                        observed_rate=sample.observed_rate,
                        observed_output_rate=sample.observed_output_rate,
                        busy_fraction=sample.busy_fraction,
                    )
        self._last_rates = dict(perturbed)
        return perturbed

    def deploy_attempt(self, time_s: Seconds) -> Tuple[bool, Seconds]:
        """Outcome of one deploy attempt: ``(succeeded, extra_delay_s)``.

        An armed ``deploy_fail`` budget makes the attempt fail (one
        unit consumed per attempt, earliest-armed event first). A
        successful attempt may still consume a one-shot
        ``deploy_delay`` and pay its lag as extra restart downtime.
        """
        for armed in self._fail:
            if armed.remaining > 0 and time_s >= armed.event.time_s - 1e-9:
                armed.remaining -= 1
                self._bite(armed, time_s)
                return False, 0.0
        for armed in self._delay:
            if not armed.consumed and time_s >= armed.event.time_s - 1e-9:
                armed.consumed = True
                self._bite(armed, time_s)
                return True, float(armed.event.magnitude)
        return True, 0.0
