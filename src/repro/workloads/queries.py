"""The six evaluation queries of the paper, as logical operator graphs.

Each builder returns a :class:`~repro.dataflow.graph.LogicalGraph` whose
per-record unit costs were chosen so that the query stresses the resource
dimension the paper attributes to it (see DESIGN.md section 1). The unit
costs play the role of the measurements CAPSys' profiling phase produces
on real hardware (paper section 5.1); the profiler in
:mod:`repro.controller.profiler` re-derives them empirically from the
simulator rather than trusting these constants.

Query lineage (paper section 6.1):

==============  =======================  ==============================
This package    Paper name               Origin
==============  =======================  ==============================
``q1_sliding``  Q1-sliding               Nexmark Q5 (hot items)
``q2_join``     Q2-join                  Nexmark Q8 (monitor new users)
``q3_inf``      Q3-inf                   Crayfish image inference
``q4_join``     Q4-join                  Nexmark Q3 (local item sales)
``q5_aggregate`` Q5-aggregate            Nexmark Q6 (avg price/seller)
``q6_session``  Q6-session               Nexmark Q11 (user sessions)
==============  =======================  ==============================

Default parallelisms reproduce the motivation-study setting (4 r5d.xlarge
workers with 4 slots each, paper section 3.1); the experiment harness
overrides them with DS2 decisions where the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.dataflow.graph import GcSpikeProfile, LogicalGraph, OperatorSpec, Partitioning

KB = 1024.0


@dataclass(frozen=True)
class QueryPreset:
    """A query builder plus the experiment defaults that accompany it.

    Attributes:
        name: Paper name of the query (e.g. ``"Q1-sliding"``).
        build: Zero-argument builder returning a fresh logical graph with
            the motivation-study default parallelism.
        target_rate: Default per-source target input rate (records/s)
            calibrated so the query roughly saturates the motivation
            cluster under a *good* placement, mirroring the paper's
            methodology of raising the rate until saturation (sec. 3.1).
        dominant_dimension: The resource dimension the paper identifies
            as this query's contention driver (``"cpu"``, ``"io"`` or
            ``"net"``); used by tests and by Figure 3 plan selection.
    """

    name: str
    build: Callable[[], LogicalGraph]
    target_rate: float
    dominant_dimension: str
    #: Per-source target rate for the section 6.2 isolation experiments
    #: (4 x m5d.2xlarge, 32 slots), calibrated to ~90% of the query's
    #: saturation rate under a good placement on that cluster.
    isolation_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.isolation_rate == 0.0:
            object.__setattr__(self, "isolation_rate", self.target_rate)


# ----------------------------------------------------------------------
# Q1-sliding: map -> sliding window (Nexmark Q5). Stateful, I/O-bound at
# the window; network-light (the paper notes C_net is non-dominant).
# ----------------------------------------------------------------------

def q1_sliding(
    source_parallelism: int = 2,
    map_parallelism: int = 5,
    window_parallelism: int = 8,
) -> LogicalGraph:
    """Q1-sliding: a simple stateful query (paper section 3.1).

    A map operator followed by a sliding window. The sliding window
    maintains overlapping panes in the state backend, so each input
    record incurs a large read+write I/O cost; co-locating window tasks
    contends on disk, which is the effect Figure 2 measures.
    """
    g = LogicalGraph("Q1-sliding")
    g.add_operator(
        OperatorSpec(
            "source",
            cpu_per_record=4.0e-6,
            out_record_bytes=150.0,
            selectivity=1.0,
            is_source=True,
        ),
        parallelism=source_parallelism,
    )
    g.add_operator(
        OperatorSpec(
            "map",
            cpu_per_record=3.0e-5,
            out_record_bytes=150.0,
            selectivity=1.0,
        ),
        parallelism=map_parallelism,
    )
    g.add_operator(
        OperatorSpec(
            "sliding_window",
            cpu_per_record=1.8e-4,
            io_bytes_per_record=80.0 * KB,
            out_record_bytes=200.0,
            selectivity=0.1,
            state_bytes_per_record=2.0 * KB,
        ),
        parallelism=window_parallelism,
    )
    g.add_edge("source", "map", Partitioning.REBALANCE)
    g.add_edge("map", "sliding_window", Partitioning.HASH)
    g.validate()
    return g


# ----------------------------------------------------------------------
# Q2-join: two sources -> two maps -> tumbling window join (Nexmark Q8).
# The join buffers every record in RocksDB and scans on window trigger,
# making it the most I/O-intensive operator (paper section 3.3).
# ----------------------------------------------------------------------

def q2_join(
    source_parallelism: int = 1,
    map_parallelism: int = 2,
    join_parallelism: int = 8,
) -> LogicalGraph:
    """Q2-join: two-source tumbling window join accumulating large state."""
    g = LogicalGraph("Q2-join")
    for side in ("persons", "auctions"):
        g.add_operator(
            OperatorSpec(
                f"source_{side}",
                cpu_per_record=2.0e-6,
                out_record_bytes=120.0,
                selectivity=1.0,
                is_source=True,
            ),
            parallelism=source_parallelism,
        )
        g.add_operator(
            OperatorSpec(
                f"map_{side}",
                cpu_per_record=6.0e-6,
                out_record_bytes=120.0,
                selectivity=1.0,
            ),
            parallelism=map_parallelism,
        )
        g.add_edge(f"source_{side}", f"map_{side}", Partitioning.REBALANCE)
    g.add_operator(
        OperatorSpec(
            "tumbling_join",
            cpu_per_record=1.2e-5,
            io_bytes_per_record=5.8 * KB,
            out_record_bytes=180.0,
            selectivity=0.2,
            state_bytes_per_record=1.0 * KB,
        ),
        parallelism=join_parallelism,
    )
    g.add_edge("map_persons", "tumbling_join", Partitioning.HASH)
    g.add_edge("map_auctions", "tumbling_join", Partitioning.HASH)
    g.validate()
    return g


# ----------------------------------------------------------------------
# Q3-inf: image decode -> model inference -> sink (Crayfish pipeline).
# Compute-intensive at the inference operator (with periodic GC spikes)
# and network-intensive because source and decode emit large image
# records (paper sections 3.1 and 3.3).
# ----------------------------------------------------------------------

def q3_inf(
    source_parallelism: int = 1,
    decode_parallelism: int = 3,
    inference_parallelism: int = 4,
    sink_parallelism: int = 3,
) -> LogicalGraph:
    """Q3-inf: network- and compute-intensive image inference pipeline."""
    g = LogicalGraph("Q3-inf")
    g.add_operator(
        OperatorSpec(
            "source",
            cpu_per_record=1.0e-5,
            out_record_bytes=75.0 * KB,
            selectivity=1.0,
            is_source=True,
        ),
        parallelism=source_parallelism,
    )
    g.add_operator(
        OperatorSpec(
            "decode",
            cpu_per_record=4.0e-4,
            out_record_bytes=150.0 * KB,
            selectivity=1.0,
        ),
        parallelism=decode_parallelism,
    )
    g.add_operator(
        OperatorSpec(
            "inference",
            cpu_per_record=3.3e-3,
            out_record_bytes=1.0 * KB,
            selectivity=1.0,
            gc_spike=GcSpikeProfile(period_s=30.0, duration_s=4.0, magnitude=0.5),
        ),
        parallelism=inference_parallelism,
    )
    g.add_operator(
        OperatorSpec(
            "sink",
            cpu_per_record=2.0e-5,
            out_record_bytes=0.0,
            selectivity=0.0,
        ),
        parallelism=sink_parallelism,
    )
    g.add_edge("source", "decode", Partitioning.REBALANCE)
    g.add_edge("decode", "inference", Partitioning.REBALANCE)
    g.add_edge("inference", "sink", Partitioning.HASH)
    g.validate()
    return g


# ----------------------------------------------------------------------
# Q4-join: filters -> incremental join (Nexmark Q3).
# ----------------------------------------------------------------------

def q4_join(
    source_parallelism: int = 1,
    filter_parallelism: int = 2,
    join_parallelism: int = 6,
) -> LogicalGraph:
    """Q4-join: incremental join over filtered person/auction streams."""
    g = LogicalGraph("Q4-join")
    for side, sel in (("persons", 0.4), ("auctions", 0.5)):
        g.add_operator(
            OperatorSpec(
                f"source_{side}",
                cpu_per_record=2.0e-6,
                out_record_bytes=130.0,
                selectivity=1.0,
                is_source=True,
            ),
            parallelism=source_parallelism,
        )
        g.add_operator(
            OperatorSpec(
                f"filter_{side}",
                cpu_per_record=8.0e-6,
                out_record_bytes=130.0,
                selectivity=sel,
            ),
            parallelism=filter_parallelism,
        )
        g.add_edge(f"source_{side}", f"filter_{side}", Partitioning.REBALANCE)
    g.add_operator(
        OperatorSpec(
            "incremental_join",
            cpu_per_record=2.5e-5,
            io_bytes_per_record=5.0 * KB,
            out_record_bytes=200.0,
            selectivity=0.3,
            state_bytes_per_record=600.0,
        ),
        parallelism=join_parallelism,
    )
    g.add_edge("filter_persons", "incremental_join", Partitioning.HASH)
    g.add_edge("filter_auctions", "incremental_join", Partitioning.HASH)
    g.validate()
    return g


# ----------------------------------------------------------------------
# Q5-aggregate: join -> process-function aggregation (Nexmark Q6). The
# paper's hardest query for the baselines: CAPS achieved up to 6x higher
# throughput here (section 6.2.1), because both the join and the process
# function are resource-hungry and a random placement easily piles them
# onto the same workers.
# ----------------------------------------------------------------------

def q5_aggregate(
    source_parallelism: int = 1,
    join_parallelism: int = 6,
    aggregate_parallelism: int = 6,
) -> LogicalGraph:
    """Q5-aggregate: stateful join feeding a process-function aggregation."""
    g = LogicalGraph("Q5-aggregate")
    for side in ("auctions", "bids"):
        g.add_operator(
            OperatorSpec(
                f"source_{side}",
                cpu_per_record=2.0e-6,
                out_record_bytes=110.0,
                selectivity=1.0,
                is_source=True,
            ),
            parallelism=source_parallelism,
        )
    g.add_operator(
        OperatorSpec(
            "winning_bid_join",
            cpu_per_record=2.0e-5,
            io_bytes_per_record=6.0 * KB,
            out_record_bytes=160.0,
            selectivity=0.5,
            state_bytes_per_record=800.0,
        ),
        parallelism=join_parallelism,
    )
    g.add_operator(
        OperatorSpec(
            "avg_price_process",
            cpu_per_record=2.4e-4,
            io_bytes_per_record=4.0 * KB,
            out_record_bytes=140.0,
            selectivity=0.2,
            state_bytes_per_record=400.0,
        ),
        parallelism=aggregate_parallelism,
    )
    g.add_edge("source_auctions", "winning_bid_join", Partitioning.HASH)
    g.add_edge("source_bids", "winning_bid_join", Partitioning.HASH)
    g.add_edge("winning_bid_join", "avg_price_process", Partitioning.HASH)
    g.validate()
    return g


# ----------------------------------------------------------------------
# Q6-session: map -> session window (Nexmark Q11). Session windows hold
# per-key sessions open until a gap timeout, accumulating large state.
# ----------------------------------------------------------------------

def q6_session(
    source_parallelism: int = 1,
    map_parallelism: int = 3,
    window_parallelism: int = 8,
) -> LogicalGraph:
    """Q6-session: session-window query that accumulates large state."""
    g = LogicalGraph("Q6-session")
    g.add_operator(
        OperatorSpec(
            "source",
            cpu_per_record=2.0e-6,
            out_record_bytes=110.0,
            selectivity=1.0,
            is_source=True,
        ),
        parallelism=source_parallelism,
    )
    g.add_operator(
        OperatorSpec(
            "map",
            cpu_per_record=7.0e-6,
            out_record_bytes=110.0,
            selectivity=1.0,
        ),
        parallelism=map_parallelism,
    )
    g.add_operator(
        OperatorSpec(
            "session_window",
            cpu_per_record=9.0e-5,
            io_bytes_per_record=30.0 * KB,
            out_record_bytes=170.0,
            selectivity=0.05,
            state_bytes_per_record=4.0 * KB,
        ),
        parallelism=window_parallelism,
    )
    g.add_edge("source", "map", Partitioning.REBALANCE)
    g.add_edge("map", "session_window", Partitioning.HASH)
    g.validate()
    return g


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

ALL_QUERIES: List[QueryPreset] = [
    QueryPreset("Q1-sliding", q1_sliding, target_rate=14_500.0, dominant_dimension="io", isolation_rate=19_000.0),
    QueryPreset("Q2-join", q2_join, target_rate=55_000.0, dominant_dimension="io", isolation_rate=138_000.0),
    QueryPreset("Q3-inf", q3_inf, target_rate=1_000.0, dominant_dimension="cpu", isolation_rate=3_600.0),
    QueryPreset("Q4-join", q4_join, target_rate=40_000.0, dominant_dimension="io", isolation_rate=300_000.0),
    QueryPreset("Q5-aggregate", q5_aggregate, target_rate=20_000.0, dominant_dimension="io", isolation_rate=48_000.0),
    QueryPreset("Q6-session", q6_session, target_rate=9_000.0, dominant_dimension="io", isolation_rate=45_000.0),
]

_BY_NAME: Dict[str, QueryPreset] = {p.name: p for p in ALL_QUERIES}


def query_by_name(name: str) -> QueryPreset:
    """Look up a query preset by its paper name (e.g. ``"Q3-inf"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown query {name!r}; known queries: {known}") from None
