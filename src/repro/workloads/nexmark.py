"""Record-level Nexmark-style event generation and reference semantics.

The paper's evaluation queries come from the Nexmark benchmark suite
(auctions, bids, persons) [Tucker et al. 2002; Apache Beam]. The fluid
simulator only needs per-record unit costs, but the examples and the
empirical validation tests use actual records: this module provides a
deterministic event generator and small single-process reference
implementations of the query semantics (sliding-window counts, tumbling
window join, session windows). The reference implementations are also
used to sanity-check the selectivity constants baked into
:mod:`repro.workloads.queries`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

FIRST_PERSON_ID = 1000
FIRST_AUCTION_ID = 2000


@dataclass(frozen=True)
class Person:
    """A registered marketplace user."""

    person_id: int
    name: str
    city: str
    state: str
    timestamp_ms: int


@dataclass(frozen=True)
class Auction:
    """An auction opened by a seller."""

    auction_id: int
    seller_id: int
    category: int
    initial_bid: int
    expires_ms: int
    timestamp_ms: int


@dataclass(frozen=True)
class Bid:
    """A bid placed on an open auction."""

    auction_id: int
    bidder_id: int
    price: int
    timestamp_ms: int


Event = Tuple[str, object]  # ("person"|"auction"|"bid", record)

_CITIES = ["Boston", "Seattle", "Austin", "Portland", "Chicago", "Denver"]
_STATES = ["MA", "WA", "TX", "OR", "IL", "CO"]
_NAMES = ["ada", "grace", "alan", "edsger", "barbara", "dennis", "ken", "leslie"]


class NexmarkGenerator:
    """Deterministic Nexmark event stream generator.

    Events are generated in timestamp order with the classic Nexmark
    person:auction:bid proportions of 1:3:46 by default. The generator is
    seeded and therefore fully reproducible; two generators with the same
    seed yield identical streams.

    Example:
        >>> gen = NexmarkGenerator(seed=7, events_per_second=100.0)
        >>> kinds = [kind for kind, _ in gen.take(50)]
        >>> kinds.count("bid") > kinds.count("auction") > kinds.count("person")
        True
    """

    def __init__(
        self,
        seed: int = 0,
        events_per_second: float = 1000.0,
        person_proportion: int = 1,
        auction_proportion: int = 3,
        bid_proportion: int = 46,
        auction_duration_ms: int = 60_000,
    ) -> None:
        if events_per_second <= 0:
            raise ValueError("events_per_second must be positive")
        if min(person_proportion, auction_proportion, bid_proportion) < 1:
            raise ValueError("all proportions must be >= 1")
        self._rng = random.Random(seed)
        self._events_per_second = events_per_second
        self._proportions = (person_proportion, auction_proportion, bid_proportion)
        self._cycle = sum(self._proportions)
        self._auction_duration_ms = auction_duration_ms
        self._next_person_id = FIRST_PERSON_ID
        self._next_auction_id = FIRST_AUCTION_ID
        self._emitted = 0
        self._live_auctions: List[int] = []
        self._known_persons: List[int] = []

    # ------------------------------------------------------------------
    def _timestamp_ms(self) -> int:
        return int(self._emitted * 1000.0 / self._events_per_second)

    def _make_person(self) -> Person:
        pid = self._next_person_id
        self._next_person_id += 1
        self._known_persons.append(pid)
        return Person(
            person_id=pid,
            name=self._rng.choice(_NAMES),
            city=self._rng.choice(_CITIES),
            state=self._rng.choice(_STATES),
            timestamp_ms=self._timestamp_ms(),
        )

    def _make_auction(self) -> Auction:
        aid = self._next_auction_id
        self._next_auction_id += 1
        self._live_auctions.append(aid)
        if len(self._live_auctions) > 500:
            self._live_auctions.pop(0)
        seller = (
            self._rng.choice(self._known_persons)
            if self._known_persons
            else FIRST_PERSON_ID
        )
        ts = self._timestamp_ms()
        return Auction(
            auction_id=aid,
            seller_id=seller,
            category=self._rng.randrange(10),
            initial_bid=self._rng.randrange(1, 1000),
            expires_ms=ts + self._auction_duration_ms,
            timestamp_ms=ts,
        )

    def _make_bid(self) -> Bid:
        auction = (
            self._rng.choice(self._live_auctions)
            if self._live_auctions
            else FIRST_AUCTION_ID
        )
        bidder = (
            self._rng.choice(self._known_persons)
            if self._known_persons
            else FIRST_PERSON_ID
        )
        return Bid(
            auction_id=auction,
            bidder_id=bidder,
            price=self._rng.randrange(1, 10_000),
            timestamp_ms=self._timestamp_ms(),
        )

    # ------------------------------------------------------------------
    def events(self) -> Iterator[Event]:
        """Yield an unbounded, timestamp-ordered event stream."""
        p, a, _b = self._proportions
        while True:
            slot = self._emitted % self._cycle
            if slot < p:
                yield ("person", self._make_person())
            elif slot < p + a:
                yield ("auction", self._make_auction())
            else:
                yield ("bid", self._make_bid())
            self._emitted += 1

    def take(self, count: int) -> List[Event]:
        """Materialise the next ``count`` events."""
        stream = self.events()
        return [next(stream) for _ in range(count)]


# ----------------------------------------------------------------------
# Reference query semantics (single-process, record level). These exist
# to validate the selectivity constants used by the fluid model and to
# power the record-level example application.
# ----------------------------------------------------------------------

def sliding_window_hot_items(
    bids: Sequence[Bid], window_ms: int = 10_000, slide_ms: int = 2_000
) -> List[Tuple[int, int, int]]:
    """Nexmark Q5 semantics: the hottest auction per sliding window.

    Returns one ``(window_end_ms, auction_id, bid_count)`` row per
    window. This is the logical computation behind Q1-sliding.
    """
    if window_ms <= 0 or slide_ms <= 0:
        raise ValueError("window and slide must be positive")
    if not bids:
        return []
    max_ts = max(b.timestamp_ms for b in bids)
    results: List[Tuple[int, int, int]] = []
    window_end = window_ms
    while window_end <= max_ts + slide_ms:
        window_start = window_end - window_ms
        counts: Dict[int, int] = {}
        for bid in bids:
            if window_start <= bid.timestamp_ms < window_end:
                counts[bid.auction_id] = counts.get(bid.auction_id, 0) + 1
        if counts:
            hottest = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))
            results.append((window_end, hottest[0], hottest[1]))
        window_end += slide_ms
    return results


def tumbling_window_join(
    persons: Sequence[Person],
    auctions: Sequence[Auction],
    window_ms: int = 10_000,
) -> List[Tuple[int, int]]:
    """Nexmark Q8 semantics: new persons who opened auctions in a window.

    Returns ``(person_id, auction_id)`` pairs for persons and their
    auctions that fall in the same tumbling window. This is the logical
    computation behind Q2-join.
    """
    if window_ms <= 0:
        raise ValueError("window must be positive")
    results: List[Tuple[int, int]] = []
    persons_by_window: Dict[int, Dict[int, Person]] = {}
    for person in persons:
        bucket = person.timestamp_ms // window_ms
        persons_by_window.setdefault(bucket, {})[person.person_id] = person
    for auction in auctions:
        bucket = auction.timestamp_ms // window_ms
        window_persons = persons_by_window.get(bucket, {})
        if auction.seller_id in window_persons:
            results.append((auction.seller_id, auction.auction_id))
    return results


def session_windows(
    bids: Sequence[Bid], gap_ms: int = 5_000
) -> List[Tuple[int, int, int, int]]:
    """Nexmark Q11 semantics: per-bidder session windows of bid activity.

    A session closes when a bidder is inactive for longer than ``gap_ms``.
    Returns ``(bidder_id, session_start_ms, session_end_ms, bid_count)``
    rows. This is the logical computation behind Q6-session.
    """
    if gap_ms <= 0:
        raise ValueError("gap must be positive")
    by_bidder: Dict[int, List[int]] = {}
    for bid in sorted(bids, key=lambda b: b.timestamp_ms):
        by_bidder.setdefault(bid.bidder_id, []).append(bid.timestamp_ms)
    sessions: List[Tuple[int, int, int, int]] = []
    for bidder, stamps in sorted(by_bidder.items()):
        start = prev = stamps[0]
        count = 1
        for ts in stamps[1:]:
            if ts - prev > gap_ms:
                sessions.append((bidder, start, prev, count))
                start = ts
                count = 0
            count += 1
            prev = ts
        sessions.append((bidder, start, prev, count))
    return sessions


def average_price_per_seller(
    auctions: Sequence[Auction], bids: Sequence[Bid]
) -> Dict[int, float]:
    """Nexmark Q6 semantics: average winning-bid price per seller.

    The winning bid of an auction is its highest bid. This is the logical
    computation behind Q5-aggregate.
    """
    winning: Dict[int, int] = {}
    for bid in bids:
        if bid.auction_id not in winning or bid.price > winning[bid.auction_id]:
            winning[bid.auction_id] = bid.price
    totals: Dict[int, List[int]] = {}
    for auction in auctions:
        if auction.auction_id in winning:
            totals.setdefault(auction.seller_id, []).append(
                winning[auction.auction_id]
            )
    return {
        seller: sum(prices) / len(prices) for seller, prices in sorted(totals.items())
    }


def empirical_selectivity(events: Sequence[Event], kind: str) -> float:
    """Fraction of a mixed event stream that is of ``kind``.

    Used by tests to confirm the generator respects its configured
    proportions, which in turn justifies the selectivity constants of the
    filter operators in :mod:`repro.workloads.queries`.
    """
    if not events:
        raise ValueError("need at least one event")
    matching = sum(1 for k, _ in events if k == kind)
    return matching / len(events)
