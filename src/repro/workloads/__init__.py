"""Workloads: the paper's six evaluation queries and synthetic generators.

The paper evaluates on Q1-sliding, Q2-join, Q3-inf (sections 3.1/6.1) and
three more Nexmark-derived queries Q4-join, Q5-aggregate, Q6-session
(Nexmark Q3, Q6, Q11 respectively). We rebuild each as a logical operator
graph whose per-record unit costs stress the same resource dimension the
paper attributes to it:

- Q1-sliding: stateful sliding window -- I/O plus compute on the window.
- Q2-join:    tumbling window join accumulating large state -- disk I/O.
- Q3-inf:     image pipeline with model inference -- compute (with GC
  spikes) and network (large records).
- Q4-join:    incremental join (Nexmark Q3).
- Q5-aggregate: join + process function (Nexmark Q6).
- Q6-session: session window with large state (Nexmark Q11).

:mod:`repro.workloads.nexmark` provides record-level Nexmark event
generators used by the examples and by the empirical unit-cost
derivations; :mod:`repro.workloads.rates` provides the input-rate
patterns driving the variable-workload experiments (paper section 6.4).
"""

from repro.workloads.queries import (
    ALL_QUERIES,
    QueryPreset,
    q1_sliding,
    q2_join,
    q3_inf,
    q4_join,
    q5_aggregate,
    q6_session,
    query_by_name,
)
from repro.workloads.rates import (
    ConstantRate,
    RatePattern,
    RampRate,
    SineRate,
    SquareWaveRate,
    StepSchedule,
)

__all__ = [
    "ALL_QUERIES",
    "QueryPreset",
    "q1_sliding",
    "q2_join",
    "q3_inf",
    "q4_join",
    "q5_aggregate",
    "q6_session",
    "query_by_name",
    "RatePattern",
    "ConstantRate",
    "StepSchedule",
    "SquareWaveRate",
    "SineRate",
    "RampRate",
]
