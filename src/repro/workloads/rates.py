"""Input-rate patterns for driving sources over time.

The variable-workload experiments (paper section 6.4) use two patterns:
a controlled step schedule that doubles then halves the target rate
(Table 4), and a periodic high/low square wave (Figure 9). We also ship
sine and ramp patterns used by the extension benchmarks.

A pattern is a callable mapping simulated time (seconds) to a target
input rate (records/second). Patterns are immutable and deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.units import RecordsPerSecond, Seconds


class RatePattern:
    """Base class: target input rate as a function of simulated time."""

    def rate_at(self, time_s: Seconds) -> RecordsPerSecond:
        raise NotImplementedError

    def __call__(self, time_s: Seconds) -> RecordsPerSecond:
        rate = self.rate_at(time_s)
        if rate < 0:
            raise ValueError(f"rate pattern produced negative rate {rate}")
        return rate

    def next_change_after(self, time_s: Seconds) -> Optional[Seconds]:
        """Earliest time strictly after ``time_s`` at which the rate may change.

        The fast-forward engine uses this to bound event-horizon leaps:
        the rate is promised constant on ``(time_s, next_change_after)``.
        Return ``math.inf`` when the rate never changes again, or
        ``None`` (the conservative base default) when breakpoints cannot
        be enumerated — callers must then re-evaluate every tick.
        Returning a too-*early* time only costs performance; returning a
        too-late time would let the engine leap over a rate change, so
        when in doubt return ``None``.
        """
        return None

    def max_rate(self, horizon_s: Seconds, step_s: Seconds = 1.0) -> RecordsPerSecond:
        """Maximum rate over a horizon (used for capacity provisioning)."""
        steps = max(1, int(horizon_s / step_s))
        return max(self(i * step_s) for i in range(steps + 1))


@dataclass(frozen=True)
class ConstantRate(RatePattern):
    """A fixed target rate, as in the isolation experiments (Fig. 7)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")

    def rate_at(self, time_s: Seconds) -> RecordsPerSecond:
        return self.rate

    def next_change_after(self, time_s: Seconds) -> Seconds:
        return math.inf


@dataclass(frozen=True)
class StepSchedule(RatePattern):
    """Piecewise-constant schedule given as (start_time_s, rate) steps.

    The Table 4 accuracy experiment uses an initial rate of 720 rec/s,
    doubled twice and then halved twice, changing every 10 minutes:

        >>> s = StepSchedule.doubling_then_halving(720.0, interval_s=600.0)
        >>> [s(t) for t in (0, 600, 1200, 1800, 2400)]
        [720.0, 1440.0, 2880.0, 1440.0, 720.0]
    """

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("schedule needs at least one step")
        times = [t for t, _ in self.steps]
        if times != sorted(times):
            raise ValueError("schedule steps must be time-ordered")
        if times[0] != 0.0:
            raise ValueError("schedule must start at time 0")

    @classmethod
    def doubling_then_halving(
        cls, initial_rate: float, interval_s: float = 600.0, repeats: int = 2
    ) -> "StepSchedule":
        """The paper's controlled schedule: x2 ``repeats`` times, then /2 back."""
        steps: List[Tuple[float, float]] = [(0.0, initial_rate)]
        rate = initial_rate
        t = 0.0
        for _ in range(repeats):
            t += interval_s
            rate *= 2.0
            steps.append((t, rate))
        for _ in range(repeats):
            t += interval_s
            rate /= 2.0
            steps.append((t, rate))
        return cls(tuple(steps))

    def rate_at(self, time_s: Seconds) -> RecordsPerSecond:
        current = self.steps[0][1]
        for start, rate in self.steps:
            if time_s >= start:
                current = rate
            else:
                break
        return current

    def change_times(self) -> List[Seconds]:
        """Times at which the target rate changes (excluding t=0)."""
        return [t for t, _ in self.steps[1:]]

    def next_change_after(self, time_s: Seconds) -> Seconds:
        for start, _ in self.steps[1:]:
            if start > time_s:
                return start
        return math.inf


@dataclass(frozen=True)
class SquareWaveRate(RatePattern):
    """Alternate between a high and a low rate every ``period_s`` seconds.

    Figure 9 "periodically var[ies] the input rate between a high and a
    low value every 20min"; ``SquareWaveRate(high, low, 1200.0)`` is that
    pattern (starting high).
    """

    high: float
    low: float
    period_s: float
    start_high: bool = True

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if self.high < self.low:
            raise ValueError("high rate must be >= low rate")

    def rate_at(self, time_s: Seconds) -> RecordsPerSecond:
        phase = int(time_s // self.period_s) % 2
        first, second = (self.high, self.low) if self.start_high else (self.low, self.high)
        return first if phase == 0 else second

    def next_change_after(self, time_s: Seconds) -> Seconds:
        if self.high == self.low:
            return math.inf
        boundary = (math.floor(time_s / self.period_s) + 1) * self.period_s
        if boundary <= time_s:
            boundary += self.period_s
        return boundary


@dataclass(frozen=True)
class SineRate(RatePattern):
    """Smooth diurnal-style oscillation around a mean rate."""

    mean: float
    amplitude: float
    period_s: float

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if self.amplitude < 0 or self.amplitude > self.mean:
            raise ValueError("amplitude must be within [0, mean]")

    def rate_at(self, time_s: Seconds) -> RecordsPerSecond:
        return self.mean + self.amplitude * math.sin(2 * math.pi * time_s / self.period_s)

    def next_change_after(self, time_s: Seconds) -> Optional[Seconds]:
        # Continuously varying: no enumerable breakpoints (unless flat).
        if self.amplitude == 0:
            return math.inf
        return None


@dataclass(frozen=True)
class TimeShiftedRate(RatePattern):
    """A pattern evaluated at ``time + offset_s``.

    Simulation engines start their clocks at zero; when the controller
    replaces an engine mid-experiment (a reconfiguration), it wraps the
    experiment's pattern so the new engine continues where the previous
    one stopped.
    """

    pattern: RatePattern
    offset_s: float

    def rate_at(self, time_s: Seconds) -> RecordsPerSecond:
        return self.pattern(time_s + self.offset_s)

    def next_change_after(self, time_s: Seconds) -> Optional[Seconds]:
        inner = self.pattern.next_change_after(time_s + self.offset_s)
        if inner is None or math.isinf(inner):
            return inner
        return inner - self.offset_s


@dataclass(frozen=True)
class RampRate(RatePattern):
    """Linear ramp from ``start`` to ``end`` over ``duration_s``, then flat.

    Used to find a query's saturation point, mirroring the paper's
    methodology of "gradually increasing the input rate until it
    saturates all workers" (section 3.1).
    """

    start: float
    end: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.start < 0 or self.end < 0:
            raise ValueError("rates must be non-negative")

    def rate_at(self, time_s: Seconds) -> RecordsPerSecond:
        if time_s >= self.duration_s:
            return self.end
        frac = time_s / self.duration_s
        return self.start + (self.end - self.start) * frac

    def next_change_after(self, time_s: Seconds) -> Optional[Seconds]:
        if self.start == self.end or time_s >= self.duration_s:
            return math.inf
        # Mid-ramp the rate changes continuously; no leapable segment.
        return None
