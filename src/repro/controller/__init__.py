"""The CAPSys adaptive resource controller (paper section 5).

Implements the deployment workflow of paper Figure 6:

1. the user submits a query graph and a target throughput;
2. the :mod:`profiler <repro.controller.profiler>` deploys a profiling
   job — each operator isolated on its own worker — and derives
   per-record unit costs;
3. the DS2 scaling controller decides operator parallelism;
4. the placement controller runs CAPS (with auto-tuned thresholds) to
   compute the task placement;
5-6. the deployment is effected (here: a fluid-simulation engine).

:class:`~repro.controller.capsys.CAPSysController` also drives the
runtime reconfiguration loop of section 6.4: metrics windows feed DS2,
scaling decisions trigger re-placement, and restarts cost a configurable
downtime.
"""

from repro.controller.events import AdaptiveRunResult, RescaleEvent, TimelineSample
from repro.controller.profiler import CostProfiler
from repro.controller.capsys import CAPSysController, ControllerConfig, Deployment
from repro.controller.online import OnlineProfiler, estimate_unit_costs

__all__ = [
    "AdaptiveRunResult",
    "RescaleEvent",
    "TimelineSample",
    "CostProfiler",
    "CAPSysController",
    "ControllerConfig",
    "Deployment",
    "OnlineProfiler",
    "estimate_unit_costs",
]
