"""Control-plane defense layers: metric guards, deploy retry, watchdog.

The adaptive loop trusts two inputs it does not control — the rate
telemetry DS2 scales from and the deploy step that turns a plan into a
running engine. Either can lie (see :mod:`repro.faults.telemetry`), and
an unguarded controller propagates the lie straight into parallelism
and placement. This module holds the hardening policy threaded through
:class:`~repro.controller.capsys.CAPSysController`:

1. **Metric validation + quarantine** — per-operator samples are
   rejected when non-finite, negative, physically impossible (true rate
   far above the uncontended profile oracle), or a statistical outlier
   against that operator's own accepted history (MAD modified z-score).
   Rejected samples are replaced by the last known good observation so
   DS2 always sees a complete, plausible rate map.
2. **Staleness budget** — an operator whose samples keep getting
   rejected (or dropped) is eventually *quarantined*: the guard stops
   trusting the whole telemetry snapshot and holds scaling decisions
   until fresh accepted data arrives.
3. **Watchdog / safe mode** — K consecutive failed control rounds
   (guard rejections or deploy failures) force *safe mode*: scaling
   decisions are held, placement degrades to the deterministic
   ``flink_evenly`` baseline, and a ``controller.safe_mode`` span is
   emitted until a clean round clears the state.

Everything here is deterministic — pure functions of the observed
sample sequence — so guarded runs stay byte-identical in the sim-domain
trace, with or without ``--fast-forward``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from collections import deque

from repro.observability import MetricRegistry, Tracer
from repro.scaling.rates import OperatorRates
from repro.units import Seconds

OperatorKey = Tuple[str, str]

#: Outcomes a control round can end in, canonical order.
ROUND_OUTCOMES = ("deploy", "suppressed", "safe_mode")

#: Modified z-score scale factor (0.6745 ≈ Φ⁻¹(0.75); makes the MAD
#: consistent with the standard deviation under normality).
_MAD_SCALE = 0.6745


@dataclass(frozen=True)
class GuardConfig:
    """Control-plane guard parameters.

    The defaults are deliberately loose: contention legitimately moves
    observed rates by small integer factors, so the guards only reject
    samples that are *physically* implausible or wildly outside the
    operator's own accepted history. Guards arm only when a control
    chaos schedule is in play (see ``run_adaptive``), so clean runs are
    byte-identical to the pre-guard controller.
    """

    enabled: bool = True
    #: Reject a sample whose true rate exceeds this multiple of the
    #: operator's uncontended profiled rate (contended rates are lower,
    #: never ×8 higher).
    max_rate_factor: float = 8.0
    #: Reject a sample whose MAD modified z-score against the accepted
    #: history exceeds this *and* whose ratio to the median is outside
    #: ``[1/outlier_ratio, outlier_ratio]``.
    outlier_zscore: float = 8.0
    outlier_ratio: float = 10.0
    #: Accepted-history window per operator for the outlier test.
    history_window: int = 8
    #: Consecutive rejected/missing rounds per operator before the
    #: telemetry snapshot as a whole is quarantined.
    staleness_budget_rounds: int = 3
    #: Deploy failure handling: bounded retries with exponential
    #: backoff, then rollback to the last known good configuration.
    deploy_retry_limit: int = 2
    deploy_backoff_s: Seconds = 2.0
    deploy_backoff_factor: float = 2.0
    #: Consecutive failed control rounds before the watchdog forces
    #: safe mode.
    watchdog_rounds: int = 3

    def __post_init__(self) -> None:
        for name in (
            "max_rate_factor",
            "outlier_zscore",
            "outlier_ratio",
            "deploy_backoff_s",
            "deploy_backoff_factor",
        ):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"{name} must be finite and positive; got {value}")
        if self.outlier_ratio <= 1.0:
            raise ValueError("outlier_ratio must be > 1")
        if self.deploy_backoff_factor < 1.0:
            raise ValueError("deploy_backoff_factor must be >= 1")
        if self.history_window < 2:
            raise ValueError("history_window must be >= 2")
        if self.staleness_budget_rounds < 1:
            raise ValueError("staleness_budget_rounds must be >= 1")
        if self.deploy_retry_limit < 0:
            raise ValueError("deploy_retry_limit must be >= 0")
        if self.watchdog_rounds < 1:
            raise ValueError("watchdog_rounds must be >= 1")


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class RateVerdict:
    """Outcome of validating one operator's rate sample."""

    accepted: bool
    reason: str = ""  # rejection reason when not accepted


class ControlPlaneGuard:
    """Stateful guard pipeline for one adaptive run.

    Args:
        config: Guard thresholds and budgets.
        reference_rates: The uncontended per-operator rates implied by
            the profiled unit costs (the bootstrap oracle) — both the
            physical-plausibility ceiling and the substitute of last
            resort when no good observation exists yet.
        tracer: Emits ``controller.guard.reject`` events and the
            ``controller.safe_mode`` span on the sim clock.
        registry: Hosts ``controller_guard_rejections_total{reason}``,
            ``controller_rounds_total{outcome}``, and
            ``controller_safe_mode_total``.
    """

    def __init__(
        self,
        config: GuardConfig,
        reference_rates: Mapping[OperatorKey, OperatorRates],
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.config = config
        self.reference = dict(reference_rates)
        self.tracer = tracer
        self.registry = registry
        self._history: Dict[OperatorKey, Deque[float]] = {}
        self._last_good: Dict[OperatorKey, OperatorRates] = {}
        self._stale_rounds: Dict[OperatorKey, int] = {}
        self.rejections_this_round = 0
        self.total_rejections = 0
        #: Consecutive failed rounds seen by the watchdog.
        self.failed_streak = 0
        self.safe_mode = False
        self._safe_mode_since: Optional[float] = None
        self.safe_mode_entries = 0
        self.rounds: Dict[str, int] = {k: 0 for k in ROUND_OUTCOMES}
        #: Whether this round saw a deploy attempt fail (set by the
        #: controller; feeds the watchdog).
        self.deploy_failed_this_round = False
        #: Sim time of the current control round (set by the
        #: controller; timestamps guard events raised from deep inside
        #: the placement path, which has no clock of its own).
        self.round_time_s: Seconds = 0.0

    # ------------------------------------------------------------------
    # Metric validation
    # ------------------------------------------------------------------
    def _verdict(self, key: OperatorKey, sample: OperatorRates) -> RateVerdict:
        values = (
            sample.true_rate_per_task,
            sample.observed_rate,
            sample.observed_output_rate,
            sample.busy_fraction,
        )
        if any(not math.isfinite(v) for v in values):
            return RateVerdict(False, "non_finite")
        if any(v < 0 for v in values):
            return RateVerdict(False, "negative")
        ref = self.reference.get(key)
        if ref is not None and sample.true_rate_per_task > (
            self.config.max_rate_factor * ref.true_rate_per_task
        ):
            return RateVerdict(False, "impossible_rate")
        history = self._history.get(key)
        if history is not None and len(history) >= 3:
            values_list = list(history)
            med = _median(values_list)
            mad = _median([abs(v - med) for v in values_list])
            if mad > 1e-12 and med > 1e-12:
                z = _MAD_SCALE * abs(sample.true_rate_per_task - med) / mad
                ratio = sample.true_rate_per_task / med
                wild = (
                    ratio > self.config.outlier_ratio
                    or ratio < 1.0 / self.config.outlier_ratio
                )
                if z > self.config.outlier_zscore and wild:
                    return RateVerdict(False, "outlier")
        return RateVerdict(True)

    def _observe_rejection(
        self, key: OperatorKey, reason: str, time_s: Seconds
    ) -> None:
        self.rejections_this_round += 1
        self.total_rejections += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                "sim",
                "controller.guard.reject",
                time_s,
                cat="controller",
                args={"operator": key[1], "reason": reason},
            )
        if self.registry is not None:
            self.registry.counter(
                "controller_guard_rejections_total",
                labels={"reason": reason},
                help="Telemetry samples rejected by the control-plane guard.",
            ).inc()

    def validate_rates(
        self,
        rates: Mapping[OperatorKey, OperatorRates],
        expected_keys: List[OperatorKey],
        time_s: Seconds,
    ) -> Dict[OperatorKey, OperatorRates]:
        """Screen one telemetry snapshot; always returns a complete map.

        Rejected or missing samples are substituted by the operator's
        last accepted observation (or, before any, the profile
        reference), so downstream DS2 never sees a hole or a NaN.
        """
        self.rejections_this_round = 0
        cleaned: Dict[OperatorKey, OperatorRates] = {}
        for key in expected_keys:
            sample = rates.get(key)
            if sample is None:
                self._observe_rejection(key, "missing", time_s)
                self._stale_rounds[key] = self._stale_rounds.get(key, 0) + 1
                cleaned[key] = self._substitute(key)
                continue
            verdict = self._verdict(key, sample)
            if not verdict.accepted:
                self._observe_rejection(key, verdict.reason, time_s)
                self._stale_rounds[key] = self._stale_rounds.get(key, 0) + 1
                cleaned[key] = self._substitute(key)
                continue
            self._stale_rounds[key] = 0
            self._last_good[key] = sample
            history = self._history.setdefault(
                key, deque(maxlen=self.config.history_window)
            )
            history.append(sample.true_rate_per_task)
            cleaned[key] = sample
        return cleaned

    def _substitute(self, key: OperatorKey) -> OperatorRates:
        good = self._last_good.get(key)
        if good is not None:
            return good
        ref = self.reference.get(key)
        if ref is not None:
            return ref
        # No basis at all: a neutral sample that asks for no change.
        return OperatorRates(
            true_rate_per_task=1.0,
            observed_rate=1.0,
            observed_output_rate=1.0,
            busy_fraction=1.0,
        )

    def plan_rejected(self) -> None:
        """The plan sanity guard fired: an invalid plan was discarded.

        Counted like a telemetry rejection (reason ``plan``) so the
        watchdog sees repeated planning failures too.
        """
        self._observe_rejection(("", "*"), "plan", self.round_time_s)

    def reset_history(self) -> None:
        """Forget per-operator rate history after a redeploy.

        A new configuration is a new contention regime; yesterday's
        medians would flag legitimate new steady states as outliers.
        Last-known-good samples and staleness counters survive — they
        track telemetry trust, not the contention regime.
        """
        self._history.clear()

    @property
    def telemetry_quarantined(self) -> bool:
        """Whether any operator exhausted its staleness budget."""
        budget = self.config.staleness_budget_rounds
        return any(v >= budget for v in self._stale_rounds.values())

    # ------------------------------------------------------------------
    # Deploy retry policy
    # ------------------------------------------------------------------
    def retry_backoff_s(self, attempt: int) -> Seconds:
        """Backoff paid before retry ``attempt`` (1-based)."""
        return self.config.deploy_backoff_s * (
            self.config.deploy_backoff_factor ** (attempt - 1)
        )

    # ------------------------------------------------------------------
    # Watchdog / safe mode
    # ------------------------------------------------------------------
    @property
    def holds_decisions(self) -> bool:
        """Whether scaling decisions are held this round."""
        return self.safe_mode or self.telemetry_quarantined

    def record_round(
        self, time_s: Seconds, outcome: str, observed: bool
    ) -> None:
        """Close one control round and update the watchdog.

        Args:
            time_s: Sim time the round closed at.
            outcome: One of :data:`ROUND_OUTCOMES`.
            observed: Whether the round produced evidence — fresh
                telemetry screened or a deploy attempted. Gated rounds
                that never looked at telemetry carry no signal and do
                not move the watchdog streak either way.
        """
        if outcome not in ROUND_OUTCOMES:
            raise ValueError(
                f"unknown round outcome {outcome!r}; expected one of "
                f"{ROUND_OUTCOMES}"
            )
        self.rounds[outcome] += 1
        if self.registry is not None:
            self.registry.counter(
                "controller_rounds_total",
                labels={"outcome": outcome},
                help="Control rounds by terminal outcome.",
            ).inc()
        if not observed:
            self.deploy_failed_this_round = False
            return
        failed = self.rejections_this_round > 0 or self.deploy_failed_this_round
        self.deploy_failed_this_round = False
        if failed:
            self.failed_streak += 1
            if (
                not self.safe_mode
                and self.failed_streak >= self.config.watchdog_rounds
            ):
                self._enter_safe_mode(time_s)
        else:
            self.failed_streak = 0
            if self.safe_mode:
                self._exit_safe_mode(time_s)

    def _enter_safe_mode(self, time_s: Seconds) -> None:
        self.safe_mode = True
        self._safe_mode_since = time_s
        self.safe_mode_entries += 1
        if self.registry is not None:
            self.registry.counter(
                "controller_safe_mode_total",
                help="Watchdog-forced safe-mode entries.",
            ).inc()

    def _exit_safe_mode(self, time_s: Seconds) -> None:
        self.safe_mode = False
        if (
            self.tracer is not None
            and self.tracer.enabled
            and self._safe_mode_since is not None
        ):
            self.tracer.span(
                "sim",
                "controller.safe_mode",
                self._safe_mode_since,
                time_s,
                cat="controller",
            )
        self._safe_mode_since = None

    def finish(self, time_s: Seconds) -> None:
        """Flush an open safe-mode span at end of run."""
        if self.safe_mode:
            self._exit_safe_mode(time_s)
            self.safe_mode = True  # state stays true; only the span closes

    @property
    def verdict(self) -> str:
        """Guard verdict for the placement explanation."""
        if self.safe_mode:
            return "safe_mode"
        if self.rejections_this_round > 0 or self.telemetry_quarantined:
            return "rejected"
        return "clean"
