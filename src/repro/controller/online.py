"""Online profiling: re-deriving unit costs from live metrics.

The paper leaves online profiling as future work but notes the existing
infrastructure supports it: "we could use our current infrastructure to
have the Metrics Collector periodically feed metrics to DS2 and CAPS"
(section 5.1). This module implements that loop for the simulator
substrate.

The offline profiler isolates one operator per worker, so attribution
is trivial. Live deployments co-locate operators, so per-worker usage
must be *attributed* across the operators sharing each worker. We solve
a non-negative least-squares system per resource dimension:

    usage[w] = sum_over_operators( A[w, op] * unit_cost[op] )

where ``A[w, op]`` is the windowed record rate of operator ``op``'s
tasks on worker ``w`` (output rate for the network dimension). With at
least as many workers as operators — always true for the paper's
deployments — the system is well determined.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.dataflow.physical import PhysicalGraph
from repro.core.cost_model import UnitCosts
from repro.core.plan import PlacementPlan
from repro.dataflow.cluster import Cluster
from repro.simulator.engine import FluidSimulation

OperatorKey = Tuple[str, str]


def _nonnegative_lstsq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Least squares with negative coefficients clipped to zero.

    Resource unit costs are physically non-negative; tiny negative
    estimates are numerical artefacts of near-collinear columns.
    """
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    return np.maximum(solution, 0.0)


def _usage_row_mask(
    usage_rows: np.ndarray, mad_threshold: float, min_rows: int
) -> np.ndarray:
    """Boolean mask of worker rows to keep for the attribution solve.

    Rows with any non-finite usage are always dropped. Rows whose total
    usage is a MAD-based outlier (modified z-score above
    ``mad_threshold``) are dropped next, worst first, but never below
    ``min_rows`` surviving rows — the least-squares system must stay at
    least square.
    """
    keep = np.isfinite(usage_rows).all(axis=1)
    if keep.sum() < min_rows:
        # Too corrupted to be selective; the caller gets the finite
        # rows only and the solve degrades gracefully.
        return keep
    totals = usage_rows.sum(axis=1)
    finite_totals = totals[keep]
    med = float(np.median(finite_totals))
    mad = float(np.median(np.abs(finite_totals - med)))
    if mad <= 1e-12:
        return keep
    z = 0.6745 * np.abs(totals - med) / mad
    order = np.argsort(-z)
    for idx in order:
        if keep.sum() <= min_rows:
            break
        if keep[idx] and z[idx] > mad_threshold:
            keep[idx] = False
    return keep


def estimate_unit_costs(
    sim: FluidSimulation,
    warmup_s: float = 0.0,
    mad_threshold: Optional[float] = None,
) -> Dict[OperatorKey, UnitCosts]:
    """Attribute a live deployment's worker usage to per-operator costs.

    Args:
        sim: A running simulation with at least one full metrics window.
        warmup_s: Portion of the worker-usage series to discard.
        mad_threshold: When set, screen worker usage rows before the
            attribution solve: rows with non-finite usage are dropped,
            and rows whose total usage is a MAD modified-z-score
            outlier above this threshold are dropped (keeping at least
            as many rows as operators). ``None`` — the default —
            preserves the historical unscreened behaviour bit-for-bit.

    Returns:
        Estimated :class:`UnitCosts` per operator. Operators that
        processed no records in the window get zero costs and their
        spec selectivity is unknown (reported as the observed 0).
    """
    physical = sim.physical
    operators = physical.operator_keys()
    task_rates = sim.metrics.task_rates()
    dt = sim.config.dt

    worker_ids = [w.worker_id for w in sim.cluster.workers]
    worker_pos = {w: i for i, w in enumerate(worker_ids)}
    n_w, n_ops = len(worker_ids), len(operators)

    a_in = np.zeros((n_w, n_ops))   # input-rate matrix (cpu, io)
    a_out = np.zeros((n_w, n_ops))  # output-rate matrix (net)
    for o, key in enumerate(operators):
        for task in physical.operator_tasks(*key):
            w = worker_pos[sim.plan.worker_of(task)]
            a_in[w, o] += task_rates[task.uid].observed_rate
            a_out[w, o] += task_rates[task.uid].observed_output_rate

    cpu_usage = sim.metrics.worker_cpu_utilisation(warmup_s, dt) * np.array(
        [w.spec.cpu_capacity for w in sim.cluster.workers]
    )
    io_usage = sim.metrics.worker_io_rate(warmup_s, dt)
    net_usage = sim.metrics.worker_net_rate(warmup_s, dt)

    if mad_threshold is not None:
        usage_rows = np.column_stack([cpu_usage, io_usage, net_usage])
        keep = _usage_row_mask(usage_rows, mad_threshold, min_rows=n_ops)
        a_in = a_in[keep]
        a_out = a_out[keep]
        cpu_usage = cpu_usage[keep]
        io_usage = io_usage[keep]
        net_usage = net_usage[keep]

    cpu = _nonnegative_lstsq(a_in, cpu_usage)
    io = _nonnegative_lstsq(a_in, io_usage)
    net = _nonnegative_lstsq(a_out, net_usage)

    estimates: Dict[OperatorKey, UnitCosts] = {}
    for o, key in enumerate(operators):
        rates = [task_rates[t.uid] for t in physical.operator_tasks(*key)]
        observed_in = sum(r.observed_rate for r in rates)
        observed_out = sum(r.observed_output_rate for r in rates)
        selectivity = observed_out / observed_in if observed_in > 1e-9 else 0.0
        estimates[key] = UnitCosts(
            cpu_per_record=float(cpu[o]),
            io_bytes_per_record=float(io[o]),
            net_bytes_per_record=float(net[o]),
            selectivity=selectivity,
        )
    return estimates


class OnlineProfiler:
    """Periodically refreshed unit-cost estimates for a deployment.

    Blends each new live estimate into the running profile with an
    exponential moving average, so a momentary starvation does not wipe
    out a good profile. The refreshed costs can be handed to DS2 and
    CAPS on the next reconfiguration exactly like offline profiles.

    A profiler is also the *last-known-good profile store* of the
    control-plane guard pipeline: a fresh estimate with any non-finite
    cost is quarantined outright (the stored profile is untouched), and
    ``staleness_budget`` consecutive quarantined/starved refreshes flip
    :attr:`stale` so the controller knows the profile has outlived its
    trustworthiness.
    """

    def __init__(
        self,
        initial: Mapping[OperatorKey, UnitCosts],
        smoothing: float = 0.5,
        mad_threshold: Optional[float] = None,
        staleness_budget: int = 3,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if staleness_budget < 1:
            raise ValueError("staleness_budget must be >= 1")
        self._costs: Dict[OperatorKey, UnitCosts] = dict(initial)
        self.smoothing = smoothing
        self.mad_threshold = mad_threshold
        self.staleness_budget = staleness_budget
        self._stale_refreshes = 0
        #: Fresh estimates rejected for non-finite costs.
        self.quarantined_total = 0

    @property
    def unit_costs(self) -> Dict[OperatorKey, UnitCosts]:
        return dict(self._costs)

    @property
    def stale(self) -> bool:
        """Whether the profile exhausted its staleness budget."""
        return self._stale_refreshes >= self.staleness_budget

    @staticmethod
    def _finite(costs: UnitCosts) -> bool:
        return all(
            np.isfinite(v)
            for v in (
                costs.cpu_per_record,
                costs.io_bytes_per_record,
                costs.net_bytes_per_record,
                costs.selectivity,
            )
        )

    def refresh(self, sim: FluidSimulation, warmup_s: float = 0.0) -> None:
        """Fold a live estimate into the running profile.

        The network estimate of a task whose downstream neighbours are
        co-located under-counts (intra-worker channels are free), so the
        blend keeps the maximum of old and new for the network
        dimension — the profile must reflect what the operator *would*
        emit if remote, which is what the cost model needs.
        """
        try:
            fresh = estimate_unit_costs(
                sim, warmup_s, mad_threshold=self.mad_threshold
            )
        except (ValueError, np.linalg.LinAlgError):
            # Corrupted attribution: non-finite usage poisons the
            # least-squares solve and UnitCosts itself rejects
            # non-finite coefficients. Keep the last known good profile.
            self.quarantined_total += 1
            self._stale_refreshes += 1
            return
        if any(not self._finite(new) for new in fresh.values()):
            # Defense in depth against an estimator that slips a
            # non-finite cost past construction.
            self.quarantined_total += 1
            self._stale_refreshes += 1
            return
        alpha = self.smoothing
        absorbed = False
        for key, new in fresh.items():
            if key not in self._costs:
                self._costs[key] = new
                absorbed = True
                continue
            old = self._costs[key]
            starved = new.selectivity == 0.0 and new.cpu_per_record == 0.0
            if starved:
                continue
            absorbed = True
            self._costs[key] = UnitCosts(
                cpu_per_record=(1 - alpha) * old.cpu_per_record
                + alpha * new.cpu_per_record,
                io_bytes_per_record=(1 - alpha) * old.io_bytes_per_record
                + alpha * new.io_bytes_per_record,
                net_bytes_per_record=max(
                    old.net_bytes_per_record, new.net_bytes_per_record
                ),
                selectivity=(1 - alpha) * old.selectivity + alpha * new.selectivity,
            )
        if absorbed:
            self._stale_refreshes = 0
        else:
            self._stale_refreshes += 1
