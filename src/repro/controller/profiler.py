"""Cost profiling (paper section 5.1, "Cost profiling").

"To profile the resource requirements of a query, we deploy tasks of
each operator on a separate Task Manager and monitor its behavior for a
configurable profiling duration. For each operator, we record (i) the
compute cost, as the CPU utilization of the Task Manager where it is
deployed, (ii) the state access cost, as the sum of uncompressed bytes
read from and written to the RocksDB state backend, and (iii) the
network cost, as the number of bytes the operator emits per second.
During the profiling phase, we calculate each operator's cost value per
record for each dimension, by dividing its respective metric by its
observed output rate."

The profiler builds a dedicated profiling deployment — one worker per
operator, parallelism one — runs it on the simulator at a configurable
profiling rate, and divides the isolated worker's measured usage by the
operator's observed rates. Profiling runs once per query; the resulting
:class:`~repro.core.cost_model.UnitCosts` are cached and reused on every
reconfiguration (costs are per record, hence rate-independent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.dataflow.cluster import Cluster, Worker, WorkerSpec
from repro.dataflow.graph import LogicalGraph
from repro.dataflow.physical import PhysicalGraph
from repro.core.cost_model import UnitCosts
from repro.core.plan import PlacementPlan
from repro.simulator.engine import FluidSimulation, SimulationConfig

OperatorKey = Tuple[str, str]


class CostProfiler:
    """Derives per-record unit costs by isolating operators on workers.

    Args:
        worker_spec: Hardware of the profiling workers (use the target
            cluster's spec so CPU seconds translate).
        profiling_rate: Source rate driven during profiling. Keep it low
            enough that upstream operators are not starved; per-record
            ratios are rate-independent in any case.
        duration_s: Profiling duration (the paper uses up to 20 min to
            let state accumulate; simulated time is cheap).
        warmup_s: Portion excluded from the averages.
        config: Simulator configuration (e.g. measurement noise).
    """

    def __init__(
        self,
        worker_spec: WorkerSpec,
        profiling_rate: float = 100.0,
        duration_s: float = 120.0,
        warmup_s: float = 30.0,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        if profiling_rate <= 0:
            raise ValueError("profiling_rate must be positive")
        if duration_s <= warmup_s:
            raise ValueError("duration must exceed warmup")
        self.worker_spec = worker_spec
        self.profiling_rate = profiling_rate
        self.duration_s = duration_s
        self.warmup_s = warmup_s
        self.config = config or SimulationConfig()

    # ------------------------------------------------------------------
    def profile(self, graph: LogicalGraph) -> Dict[OperatorKey, UnitCosts]:
        """Run the profiling job and return unit costs per operator."""
        graph.validate()
        operators = graph.topological_order()
        profiling_graph = graph.with_parallelism({op: 1 for op in operators})
        # FORWARD edges require equal parallelism, which parallelism-1
        # everywhere satisfies trivially.
        profiling_graph.validate()
        physical = PhysicalGraph.expand(profiling_graph)

        cluster = Cluster.homogeneous(
            self.worker_spec.with_slots(1), count=len(operators)
        )
        assignment = {}
        worker_of_op: Dict[str, int] = {}
        for i, op in enumerate(operators):
            task = physical.operator_tasks(profiling_graph.job_id, op)[0]
            assignment[task.uid] = i
            worker_of_op[op] = i
        plan = PlacementPlan(assignment)

        rates = {
            (profiling_graph.job_id, op): self.profiling_rate
            for op in profiling_graph.sources()
        }
        sim = FluidSimulation(physical, cluster, plan, rates, config=self.config)
        sim.run(self.duration_s)

        dt = self.config.dt
        cpu_util = sim.metrics.worker_cpu_utilisation(self.warmup_s, dt)
        io_rate = sim.metrics.worker_io_rate(self.warmup_s, dt)
        net_rate = sim.metrics.worker_net_rate(self.warmup_s, dt)
        task_rates = sim.metrics.task_rates()

        costs: Dict[OperatorKey, UnitCosts] = {}
        for op in operators:
            w = worker_of_op[op]
            task = physical.operator_tasks(profiling_graph.job_id, op)[0]
            observed = task_rates[task.uid]
            in_rate = max(observed.observed_rate, 1e-9)
            out_rate = observed.observed_output_rate
            cpu_capacity = self.worker_spec.cpu_capacity
            costs[(graph.job_id, op)] = UnitCosts(
                cpu_per_record=float(cpu_util[w]) * cpu_capacity / in_rate,
                io_bytes_per_record=float(io_rate[w]) / in_rate,
                net_bytes_per_record=(
                    float(net_rate[w]) / out_rate if out_rate > 1e-9 else 0.0
                ),
                selectivity=observed.selectivity,
            )
        return costs
