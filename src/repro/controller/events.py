"""Timeline records produced by the adaptive controller.

The convergence experiment (paper Figure 9) plots observed throughput
and occupied resources over time with scaling decisions marked; these
dataclasses are the data behind that plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TimelineSample:
    """One tick of the adaptive run, on the experiment's absolute clock."""

    time_s: float
    target_rate: float
    throughput: float
    backpressure: float
    latency_s: float
    total_tasks: int


@dataclass(frozen=True)
class RescaleEvent:
    """One scaling decision that was actually enacted."""

    time_s: float
    old_parallelism: Dict[str, int]
    new_parallelism: Dict[str, int]
    reason: str = "ds2"

    @property
    def delta_tasks(self) -> int:
        return sum(self.new_parallelism.values()) - sum(self.old_parallelism.values())


@dataclass
class AdaptiveRunResult:
    """Everything the controller observed over one adaptive run."""

    samples: List[TimelineSample] = field(default_factory=list)
    events: List[RescaleEvent] = field(default_factory=list)

    def rescale_count(self) -> int:
        return len(self.events)

    def samples_between(self, start_s: float, end_s: float) -> List[TimelineSample]:
        return [s for s in self.samples if start_s <= s.time_s < end_s]

    def mean_throughput(self, start_s: float, end_s: float) -> float:
        window = self.samples_between(start_s, end_s)
        if not window:
            return 0.0
        return sum(s.throughput for s in window) / len(window)

    def mean_backpressure(self, start_s: float, end_s: float) -> float:
        window = self.samples_between(start_s, end_s)
        if not window:
            return 0.0
        return sum(s.backpressure for s in window) / len(window)

    def max_tasks(self, start_s: float, end_s: float) -> int:
        window = self.samples_between(start_s, end_s)
        if not window:
            return 0
        return max(s.total_tasks for s in window)
