"""The CAPSys controller: auto-scaling and placement in concert.

Implements the workflow of paper Figure 6 against the fluid simulator:
profile once, let DS2 pick parallelism, let CAPS (or a baseline
strategy) place tasks, deploy, monitor, and reconfigure when DS2 asks
for a different parallelism. Reconfigurations pay a restart downtime
during which throughput is zero and backpressure is total, mirroring a
Flink stop/savepoint/restart cycle.

The same controller drives the baseline placement policies so that the
auto-scaling experiments (paper section 6.4) compare placement
strategies under an otherwise identical control loop.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.dataflow.cluster import Cluster
from repro.dataflow.graph import LogicalGraph
from repro.dataflow.physical import PhysicalGraph
from repro.core.cost_model import CostModel, TaskCosts, UnitCosts
from repro.core.plan import PlacementPlan
from repro.controller.events import AdaptiveRunResult, RescaleEvent, TimelineSample
from repro.controller.guards import ControlPlaneGuard, GuardConfig
from repro.controller.profiler import CostProfiler, OperatorKey
from repro.faults import (
    ChaosSchedule,
    CheckpointConfig,
    ClusterHealth,
    ControlChaosSchedule,
    ControlChaosView,
    observe_fault,
    recovery_downtime,
)
from repro.diagnosis.explain import Explanation
from repro.observability import MetricRegistry, Tracer, clock
from repro.placement.base import PlacementStrategy
from repro.placement.caps import CapsStrategy
from repro.placement.flink_evenly import FlinkEvenlyStrategy
from repro.scaling.ds2 import DS2Controller, ScalingDecision
from repro.scaling.rates import OperatorRates, aggregate_operator_rates
from repro.simulator.engine import FluidSimulation, SimulationConfig
from repro.workloads.rates import ConstantRate, RatePattern, TimeShiftedRate


@dataclass(frozen=True)
class ControllerConfig:
    """Control-loop parameters (paper section 6.4 uses 90 s activation
    time and a 5 s policy interval)."""

    policy_interval_s: float = 5.0
    activation_time_s: float = 90.0
    rescale_downtime_s: float = 10.0
    #: DS2 plans to use this fraction of each task's true rate; below
    #: 1.0 leaves headroom for transient load peaks (GC spikes) and for
    #: co-location interference the uncontended bootstrap oracle cannot
    #: see (RocksDB compaction), which the paper's testbed sizing
    #: implicitly had.
    ds2_utilisation_target: float = 0.85
    profiling_rate: float = 100.0
    profiling_duration_s: float = 120.0
    autotune_timeout_s: float = 5.0
    search_timeout_s: float = 5.0
    #: Placement-search backend: ``sequential``, ``thread``, or
    #: ``process`` (true multicore; see repro.core.parallel_proc).
    search_backend: str = "sequential"
    #: Worker count for the parallel search backends (None: one per core).
    search_jobs: Optional[int] = None
    #: Minimum quiet period between rescales on top of the activation
    #: time (0 disables the cooldown). Each rescale that fires while the
    #: previous window is still warm multiplies the cooldown by
    #: ``rescale_backoff_factor`` up to ``rescale_cooldown_max_s`` —
    #: exponential backoff that suppresses rescale flapping when faults
    #: arrive in bursts.
    rescale_cooldown_s: float = 0.0
    rescale_backoff_factor: float = 2.0
    rescale_cooldown_max_s: float = 600.0
    #: Checkpoint/restore cost model (disabled by default). When
    #: enabled, engines pay periodic checkpoint upload I/O and crash
    #: recovery pays a state-restore downtime instead of the flat
    #: ``rescale_downtime_s``.
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    #: Attach the root-cause diagnosis layer (contention attribution +
    #: backpressure provenance) to every deployed engine. Aggregates
    #: are flushed into the trace when each engine retires; overhead is
    #: a few percent of engine runtime (see BENCH_perf.json,
    #: ``diagnosis_overhead``).
    diagnose: bool = False
    #: Control-plane guard policy (metric validation, deploy retry,
    #: safe-mode watchdog). Guards arm only when ``run_adaptive`` is
    #: given a control-chaos schedule, so clean runs stay byte-identical
    #: to the pre-guard controller.
    guards: GuardConfig = field(default_factory=GuardConfig)
    seed: int = 0
    sim: SimulationConfig = field(default_factory=SimulationConfig)

    def __post_init__(self) -> None:
        for name in (
            "policy_interval_s",
            "activation_time_s",
            "rescale_downtime_s",
            "ds2_utilisation_target",
            "profiling_rate",
            "profiling_duration_s",
            "autotune_timeout_s",
            "search_timeout_s",
            "rescale_cooldown_s",
            "rescale_backoff_factor",
            "rescale_cooldown_max_s",
        ):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite; got {value}")
        if self.policy_interval_s <= 0:
            raise ValueError("policy_interval_s must be positive")
        if self.activation_time_s < 0 or self.rescale_downtime_s < 0:
            raise ValueError("times must be non-negative")
        if self.search_timeout_s <= 0:
            raise ValueError(
                f"search_timeout_s must be positive, got {self.search_timeout_s}"
            )
        if self.autotune_timeout_s <= 0:
            raise ValueError(
                f"autotune_timeout_s must be positive, got {self.autotune_timeout_s}"
            )
        if self.rescale_cooldown_s < 0:
            raise ValueError("rescale_cooldown_s must be non-negative")
        if self.rescale_backoff_factor < 1.0:
            raise ValueError("rescale_backoff_factor must be >= 1")
        if self.rescale_cooldown_max_s < self.rescale_cooldown_s:
            raise ValueError(
                "rescale_cooldown_max_s must be >= rescale_cooldown_s"
            )


def next_cooldown(
    config: ControllerConfig, cooldown_s: float, elapsed_since_last_s: float
) -> float:
    """Cooldown to apply after a rescale fires.

    Exponential backoff against flapping: when the rescale fired while
    the previous window was still warm (within the current gate plus one
    policy interval), the cooldown grows by ``rescale_backoff_factor``
    up to ``rescale_cooldown_max_s``; a rescale landing after a long
    quiet period resets it to the configured base. A base of 0 disables
    the mechanism entirely.
    """
    base = config.rescale_cooldown_s
    if base <= 0:
        return 0.0
    window = max(config.activation_time_s, cooldown_s) + config.policy_interval_s
    if elapsed_since_last_s <= window:
        return min(
            max(cooldown_s, base) * config.rescale_backoff_factor,
            config.rescale_cooldown_max_s,
        )
    return base


@dataclass
class Deployment:
    """One running configuration of the job."""

    graph: LogicalGraph
    physical: PhysicalGraph
    plan: PlacementPlan
    engine: FluidSimulation
    started_at_s: float
    samples_taken: int = 0

    @property
    def parallelism(self) -> Dict[str, int]:
        return self.graph.parallelism_map()

    @property
    def total_tasks(self) -> int:
        return len(self.physical)


def operator_rates_from_unit_costs(
    graph: LogicalGraph,
    unit_costs: Mapping[OperatorKey, UnitCosts],
    cluster: Cluster,
) -> Dict[OperatorKey, OperatorRates]:
    """Uncontended operator rates implied by profiled unit costs.

    The true rate of one task running alone is the inverse of its
    per-record service time on the reference worker. Used to bootstrap
    DS2 before any live metrics exist, and as the "minimum required
    resources" oracle of the Table 4 accuracy analysis.
    """
    spec = cluster.workers[0].spec
    rates: Dict[OperatorKey, OperatorRates] = {}
    for op in graph.topological_order():
        key = (graph.job_id, op)
        uc = unit_costs[key]
        service = (
            uc.cpu_per_record
            + uc.io_bytes_per_record / spec.disk_bandwidth
            + uc.selectivity * uc.net_bytes_per_record / spec.network_bandwidth
        )
        true_rate = 1.0 / service if service > 0 else 1e12
        rates[key] = OperatorRates(
            true_rate_per_task=true_rate,
            observed_rate=1.0,
            observed_output_rate=uc.selectivity,
            busy_fraction=1.0,
        )
    return rates


def _parallelism_str(parallelism: Mapping[str, int]) -> str:
    """Compact deterministic rendering for trace args (plain scalar)."""
    return ",".join(f"{op}={p}" for op, p in sorted(parallelism.items()))


class CAPSysController:
    """Adaptive controller for one streaming job on one cluster.

    Args:
        graph: The job's logical graph (parallelism values are the
            starting configuration unless DS2 overrides them).
        cluster: The worker cluster.
        strategy: ``"caps"`` (build a CAPS strategy internally) or any
            :class:`~repro.placement.base.PlacementStrategy` instance
            (the baselines). Seeded strategies are reseeded from the
            controller's RNG before every placement so baseline
            randomness varies across reconfigurations, reproducibly.
        config: Control-loop parameters.
        unit_costs: Pre-computed profile; when omitted, :meth:`profile`
            runs the profiling job on first use.
        tracer: Optional :class:`~repro.observability.Tracer` threaded
            through every engine and strategy this controller builds:
            the adaptive loop emits sim-domain deploy / DS2-decision /
            rescale events (and a rescale downtime span) on the run's
            absolute simulated clock, stitching one timeline of
            ticks -> decisions -> search spans -> restarts.
        registry: Optional :class:`~repro.observability.MetricRegistry`
            shared with the engines and the placement strategy;
            controller-level counters track deploys, DS2 decisions,
            and rescales.
    """

    def __init__(
        self,
        graph: LogicalGraph,
        cluster: Cluster,
        strategy: Union[str, PlacementStrategy] = "caps",
        config: Optional[ControllerConfig] = None,
        unit_costs: Optional[Mapping[OperatorKey, UnitCosts]] = None,
        network_cap_bytes_per_s: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.cluster = cluster
        self.config = config or ControllerConfig()
        self.strategy_spec = strategy
        self.network_cap = network_cap_bytes_per_s
        self.tracer = tracer
        self.registry = registry
        self._unit_costs: Optional[Dict[OperatorKey, UnitCosts]] = (
            dict(unit_costs) if unit_costs is not None else None
        )
        self._rng = random.Random(self.config.seed)
        #: Fallback stage of the most recent placement (see
        #: :meth:`place`); ``None`` when the search produced the plan.
        self.last_placement_fallback: Optional[str] = None
        #: Structured explanation of the most recent placement decision
        #: (see :mod:`repro.diagnosis.explain`); ``None`` for baseline
        #: strategies that do not produce one.
        self.last_explanation: Optional[Explanation] = None
        #: Control-plane guard state, armed per :meth:`run_adaptive`
        #: call when a control-chaos schedule is in play; ``last_guard``
        #: survives the run for inspection.
        self._control_view: Optional[ControlChaosView] = None
        self._guard: Optional[ControlPlaneGuard] = None
        self._zombie = False
        self.last_guard: Optional[ControlPlaneGuard] = None
        self.ds2 = DS2Controller(
            graph,
            max_parallelism=cluster.total_slots,
            utilisation_target=self.config.ds2_utilisation_target,
        )

    # ------------------------------------------------------------------
    # Workflow steps (Figure 6)
    # ------------------------------------------------------------------
    def profile(self) -> Dict[OperatorKey, UnitCosts]:
        """Step 2: run (or return the cached) profiling job."""
        if self._unit_costs is None:
            profiler = CostProfiler(
                worker_spec=self.cluster.workers[0].spec,
                profiling_rate=self.config.profiling_rate,
                duration_s=self.config.profiling_duration_s,
                config=self.config.sim,
            )
            self._unit_costs = profiler.profile(self.graph)
        return dict(self._unit_costs)

    def _fit_to_cluster(
        self, parallelism: Mapping[str, int], budget: Optional[int] = None
    ) -> Dict[str, int]:
        """Cap a scaling decision to the cluster's slot budget.

        DS2 with contention-corrupted metrics can demand more tasks than
        the (fixed) cluster has slots; a real deployment cannot grant
        that, so the largest operators are trimmed first until the
        decision fits. Sources are never trimmed below their configured
        parallelism. ``budget`` overrides the slot count for a
        fault-degraded cluster (surviving slots only).
        """
        fitted = dict(parallelism)
        if budget is None:
            budget = self.cluster.total_slots
        sources = set(self.graph.sources())
        while sum(fitted.values()) > budget:
            candidates = [
                op for op, p in fitted.items() if p > 1 and op not in sources
            ]
            if not candidates:
                raise RuntimeError(
                    "scaling decision cannot fit the cluster even at "
                    "parallelism 1 per operator"
                )
            biggest = max(candidates, key=lambda op: fitted[op])
            fitted[biggest] -= 1
        return fitted

    def initial_parallelism(
        self, target_rates: Mapping[str, float]
    ) -> Dict[str, int]:
        """Step 3 at deployment time: DS2 from profiled unit costs."""
        rates = operator_rates_from_unit_costs(
            self.graph, self.profile(), self.cluster
        )
        decision = self.ds2.decide(rates, target_rates)
        return self._fit_to_cluster(decision.parallelism)

    def _make_strategy(
        self, source_rates: Mapping[Tuple[str, str], float]
    ) -> PlacementStrategy:
        if isinstance(self.strategy_spec, str):
            if self.strategy_spec != "caps":
                raise ValueError(f"unknown strategy {self.strategy_spec!r}")
            unit_costs = self.profile()
            return CapsStrategy(
                source_rates=source_rates,
                unit_costs_provider=lambda physical: unit_costs,
                backend=self.config.search_backend,
                jobs=self.config.search_jobs,
                autotune_timeout_s=self.config.autotune_timeout_s,
                search_timeout_s=self.config.search_timeout_s,
                tracer=self.tracer,
                registry=self.registry,
            )
        strategy = self.strategy_spec
        if hasattr(strategy, "seed"):
            strategy.seed = self._rng.randrange(2**31)
        if isinstance(strategy, CapsStrategy):
            strategy.source_rates = dict(source_rates)
            strategy.tracer = self.tracer
            strategy.registry = self.registry
        return strategy

    def place(
        self,
        physical: PhysicalGraph,
        target_rates: Mapping[str, float],
        cluster: Optional[Cluster] = None,
    ) -> PlacementPlan:
        """Step 4: compute the placement for a physical graph.

        ``cluster`` overrides the search space (e.g. the surviving
        workers of a fault-degraded cluster); defaults to the full
        cluster. :attr:`last_placement_fallback` records whether the
        strategy degraded past its normal search (see
        :attr:`repro.placement.caps.CapsStrategy.last_fallback`).

        With guards armed, safe mode routes straight to the
        deterministic evenly baseline, and a strategy whose plan fails
        validation (the plan sanity guard) degrades to the same
        fallback instead of crashing the control loop.
        """
        source_rates = {
            (self.graph.job_id, op): float(rate) for op, rate in target_rates.items()
        }
        search_cluster = self.cluster if cluster is None else cluster
        guard = self._guard
        if guard is not None and guard.safe_mode:
            plan = FlinkEvenlyStrategy(seed=0).place_validated(
                physical, search_cluster
            )
            self.last_placement_fallback = "safe_mode"
            self.last_explanation = None
            return plan
        strategy = self._make_strategy(source_rates)
        if guard is not None:
            try:
                plan = strategy.place_validated(physical, search_cluster)
            except (ValueError, RuntimeError):
                guard.plan_rejected()
                plan = FlinkEvenlyStrategy(seed=0).place_validated(
                    physical, search_cluster
                )
                self.last_placement_fallback = "safe_mode"
                self.last_explanation = None
                return plan
        else:
            plan = strategy.place_validated(physical, search_cluster)
        self.last_placement_fallback = getattr(strategy, "last_fallback", None)
        self.last_explanation = getattr(strategy, "last_explanation", None)
        return plan

    def deploy(
        self,
        target_rates: Mapping[str, Union[float, RatePattern]],
        parallelism: Optional[Mapping[str, int]] = None,
        started_at_s: float = 0.0,
        health: Optional[ClusterHealth] = None,
        trigger: str = "initial",
    ) -> Deployment:
        """Steps 3-6: scale, place, and start an engine.

        ``trigger`` labels why this deployment happened (``"initial"``,
        ``"ds2"``, or a fault reason) in the persisted placement
        explanation.

        When a :class:`~repro.faults.ClusterHealth` is given, placement
        searches only the surviving workers — with degradations baked
        into their specs, so CAPS steers load away from stragglers —
        while the engine runs the survivors at their original specs with
        the degradation factors applied at runtime, so a later
        ``recover`` event can lift them mid-epoch.
        """
        plain_rates = {
            op: (rate(0.0) if isinstance(rate, RatePattern) else float(rate))
            for op, rate in target_rates.items()
        }
        engine_cluster = (
            self.cluster if health is None else health.engine_cluster()
        )
        search_cluster = (
            self.cluster if health is None else health.placement_cluster()
        )
        if self._guard is not None:
            self._guard.round_time_s = started_at_s
        if parallelism is None:
            parallelism = self.initial_parallelism(plain_rates)
        scaled = self.graph.with_parallelism(dict(parallelism))
        physical = PhysicalGraph.expand(scaled)
        plan = self.place(physical, plain_rates, cluster=search_cluster)
        engine = FluidSimulation(
            physical,
            engine_cluster,
            plan,
            {(scaled.job_id, op): rate for op, rate in target_rates.items()},
            config=self.config.sim,
            network_cap_bytes_per_s=self.network_cap,
            tracer=self.tracer,
            registry=self.registry,
        )
        engine.trace_time_offset_s = started_at_s
        if health is not None:
            engine.apply_worker_factors(*health.factor_arrays(engine_cluster))
        if self.config.checkpoint.enabled:
            engine.enable_checkpoints(self.config.checkpoint, registry=self.registry)
        if self.config.diagnose:
            engine.enable_diagnosis()
        deployment = Deployment(
            graph=scaled,
            physical=physical,
            plan=plan,
            engine=engine,
            started_at_s=started_at_s,
        )
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.event(
                "sim",
                "controller.deploy",
                started_at_s,
                cat="controller",
                args={
                    "total_tasks": deployment.total_tasks,
                    "parallelism": _parallelism_str(deployment.parallelism),
                },
            )
        if self.registry is not None:
            self.registry.counter(
                "controller_deploys_total", help="Deployments started."
            ).inc()
            self.registry.gauge(
                "controller_total_tasks",
                help="Tasks in the current deployment.",
            ).set(deployment.total_tasks)
        if self.last_placement_fallback is not None:
            if tr is not None and tr.enabled:
                tr.event(
                    "sim",
                    "controller.fallback",
                    started_at_s,
                    cat="controller",
                    args={"stage": self.last_placement_fallback},
                )
            if self.registry is not None:
                self.registry.counter(
                    "controller_fallback_total",
                    labels={"stage": self.last_placement_fallback},
                    help="Deployments placed via a fallback stage.",
                ).inc()
        if self.last_explanation is not None:
            # Wall domain: the margins derive from wall-tuned
            # thresholds, which the sim stream's byte-identity
            # contract must not depend on.
            self.last_explanation = self.last_explanation.with_trigger(trigger)
            if self._guard is not None:
                self.last_explanation = self.last_explanation.with_guard_verdict(
                    self._guard.verdict
                )
            if tr is not None and tr.enabled:
                tr.event(
                    "wall",
                    "diagnosis.explanation",
                    clock.monotonic(),
                    cat="diagnosis",
                    args=self.last_explanation.to_args(),
                )
        return deployment

    # ------------------------------------------------------------------
    # Adaptive loop (section 6.4.2)
    # ------------------------------------------------------------------
    def run_adaptive(
        self,
        patterns: Mapping[str, RatePattern],
        duration_s: float,
        initial_parallelism: Optional[Mapping[str, int]] = None,
        chaos: Optional[ChaosSchedule] = None,
        control_chaos: Optional[ControlChaosSchedule] = None,
    ) -> AdaptiveRunResult:
        """Run under a variable workload, letting DS2 trigger rescaling.

        Args:
            patterns: Target-rate pattern per source operator, on the
                experiment's absolute clock.
            duration_s: Total experiment duration (downtime included).
            initial_parallelism: Starting parallelism (the convergence
                experiment starts every operator at 1).
            chaos: Optional deterministic fault schedule. Structural
                faults that invalidate the running plan (a crash of a
                worker hosting tasks, a slot loss that displaces tasks)
                force an immediate replan on the surviving cluster;
                everything else (recoveries, degradations, harmless
                structural events) schedules an opportunistic replan at
                the next un-gated policy tick. Degradations also take
                effect on the running engine immediately.
            control_chaos: Optional deterministic *control-plane* fault
                schedule (:mod:`repro.faults.telemetry`): it perturbs
                the telemetry this loop observes and whether redeploys
                succeed, never engine truth. Providing one arms the
                guard pipeline of :class:`ControlPlaneGuard` (unless
                ``config.guards.enabled`` is off, the "unguarded"
                ablation): metric validation with last-known-good
                substitution, deploy retry/rollback, and the safe-mode
                watchdog. Deploy faults intercept *reconfigurations*;
                the initial deployment always starts.

        Returns:
            The stitched timeline with all enacted scaling decisions.
        """
        cfg = self.config
        result = AdaptiveRunResult()
        health = ClusterHealth(self.cluster)
        # `health` threads through deploys only under chaos so the
        # no-chaos path stays byte-identical to the pre-fault loop.
        health_arg = health if chaos else None
        pending = deque(chaos.events) if chaos else deque()
        view: Optional[ControlChaosView] = None
        guard: Optional[ControlPlaneGuard] = None
        if control_chaos is not None:
            view = ControlChaosView(
                control_chaos, tracer=self.tracer, registry=self.registry
            )
            if cfg.guards.enabled:
                guard = ControlPlaneGuard(
                    cfg.guards,
                    operator_rates_from_unit_costs(
                        self.graph, self.profile(), self.cluster
                    ),
                    tracer=self.tracer,
                    registry=self.registry,
                )
        self._control_view = view
        self._guard = guard
        self._zombie = False
        self.last_guard = guard
        try:
            return self._run_adaptive_loop(
                cfg,
                result,
                patterns,
                duration_s,
                initial_parallelism,
                health,
                health_arg,
                pending,
                bool(chaos),
                view,
                guard,
            )
        finally:
            self._control_view = None
            self._guard = None
            self._zombie = False

    def _run_adaptive_loop(
        self,
        cfg: ControllerConfig,
        result: AdaptiveRunResult,
        patterns: Mapping[str, RatePattern],
        duration_s: float,
        initial_parallelism: Optional[Mapping[str, int]],
        health: ClusterHealth,
        health_arg: Optional[ClusterHealth],
        pending: "deque",
        chaos_active: bool,
        view: Optional[ControlChaosView],
        guard: Optional[ControlPlaneGuard],
    ) -> AdaptiveRunResult:
        deployment = self.deploy(
            {op: TimeShiftedRate(p, 0.0) for op, p in patterns.items()},
            parallelism=initial_parallelism,
            started_at_s=0.0,
            health=health_arg,
        )
        now = 0.0
        last_rescale = 0.0
        cooldown = cfg.rescale_cooldown_s
        pending_replan: Optional[str] = None

        while now < duration_s - 1e-9:
            # ---- chaos events due now ------------------------------
            forced_reason: Optional[str] = None
            forced_downtime: Optional[float] = None
            while pending and pending[0].time_s <= now + 1e-9:
                ev = pending.popleft()
                occupied = len(deployment.plan.tasks_on(ev.worker_id))
                if ev.kind == "crash" and occupied:
                    # Measure recovery cost against the engine state
                    # *before* the worker's books are wiped.
                    forced_downtime = max(
                        forced_downtime or 0.0,
                        self._recovery_downtime(deployment, ev.worker_id),
                    )
                health.apply(ev)
                observe_fault(ev, tracer=self.tracer, registry=self.registry)
                # Dead/degraded workers take effect on the running
                # engine immediately; replanning happens below.
                deployment.engine.apply_worker_factors(
                    *health.factor_arrays(deployment.engine.cluster)
                )
                reason = f"fault:{ev.kind}:w{ev.worker_id}"
                displaced = ev.kind == "crash" and occupied
                displaced = displaced or (
                    ev.kind == "slots" and occupied > health.slots_of(ev.worker_id)
                )
                if displaced:
                    forced_reason = forced_reason or reason
                elif pending_replan is None:
                    pending_replan = reason

            if forced_reason is not None:
                fitted = self._fit_to_cluster(
                    deployment.parallelism, budget=health.total_slots()
                )
                elapsed = now - last_rescale
                deployment, now = self._enact_rescale(
                    result,
                    deployment,
                    now,
                    patterns,
                    fitted,
                    forced_reason,
                    health_arg,
                    downtime_s=forced_downtime,
                )
                cooldown = next_cooldown(cfg, cooldown, elapsed)
                last_rescale = now
                pending_replan = None
                if guard is not None:
                    guard.record_round(now, "deploy", observed=True)
                continue

            # ---- advance to the next policy tick or chaos event ----
            horizon = min(now + cfg.policy_interval_s, duration_s)
            if pending and pending[0].time_s < horizon - 1e-9:
                horizon = max(pending[0].time_s, now + cfg.sim.tick_duration_s)
            deployment.engine.run_until(horizon - deployment.started_at_s)
            now = deployment.started_at_s + deployment.engine.time_s
            self._drain_samples(deployment, result)

            gate = max(cfg.activation_time_s, cooldown)
            if now - last_rescale < gate or now >= duration_s - 1e-9:
                if pending_replan is not None and now < duration_s - 1e-9:
                    self._observe_suppressed(now, pending_replan)
                if guard is not None and now < duration_s - 1e-9:
                    # Gated round: no telemetry screened, no deploy
                    # tried — carries no watchdog evidence.
                    guard.record_round(now, "suppressed", observed=False)
                continue
            target = {op: patterns[op](now) for op in patterns}
            rates = aggregate_operator_rates(
                deployment.physical, deployment.engine.metrics.task_rates()
            )
            if view is not None:
                rates = view.perturb_rates(rates, now, self.graph.job_id)
            if guard is not None:
                guard.round_time_s = now
                expected = [
                    (self.graph.job_id, op)
                    for op in self.graph.topological_order()
                ]
                rates = guard.validate_rates(rates, expected, now)
                if self._zombie:
                    # A redeploy terminally failed earlier: the engine
                    # is down whatever the telemetry claims. Recovery
                    # beats scaling — redeploy the current target.
                    fitted = self._fit_to_cluster(
                        deployment.parallelism,
                        budget=health.total_slots() if chaos_active else None,
                    )
                    elapsed = now - last_rescale
                    deployment, now = self._enact_rescale(
                        result,
                        deployment,
                        now,
                        patterns,
                        fitted,
                        "recover:deploy_failed",
                        health_arg,
                    )
                    cooldown = next_cooldown(cfg, cooldown, elapsed)
                    last_rescale = now
                    pending_replan = None
                    guard.record_round(now, "deploy", observed=True)
                    continue
                if guard.holds_decisions:
                    outcome = "safe_mode" if guard.safe_mode else "suppressed"
                    guard.record_round(now, outcome, observed=True)
                    continue
            decision = self.ds2.decide(
                rates, target, current_parallelism=deployment.parallelism
            )
            tr = self.tracer
            if tr is not None and tr.enabled:
                tr.event(
                    "sim",
                    "ds2.decision",
                    now,
                    cat="controller",
                    args={
                        "changed": decision.changed,
                        "parallelism": _parallelism_str(decision.parallelism),
                    },
                )
            if self.registry is not None:
                self.registry.counter(
                    "controller_ds2_decisions_total",
                    help="DS2 scaling decisions evaluated.",
                ).inc()
            if not decision.changed and pending_replan is None:
                if guard is not None:
                    guard.record_round(now, "suppressed", observed=True)
                continue
            reason = "ds2" if decision.changed else pending_replan
            fitted = self._fit_to_cluster(
                decision.parallelism if decision.changed else deployment.parallelism,
                budget=health.total_slots() if chaos_active else None,
            )
            elapsed = now - last_rescale
            deployment, now = self._enact_rescale(
                result, deployment, now, patterns, fitted, reason, health_arg
            )
            cooldown = next_cooldown(cfg, cooldown, elapsed)
            last_rescale = now
            pending_replan = None
            if guard is not None:
                guard.record_round(now, "deploy", observed=True)
        self._flush_diagnosis(deployment)
        if guard is not None:
            guard.finish(duration_s)
        return result

    def _enact_rescale(
        self,
        result: AdaptiveRunResult,
        deployment: Deployment,
        now: float,
        patterns: Mapping[str, RatePattern],
        fitted: Mapping[str, int],
        reason: str,
        health: Optional[ClusterHealth],
        downtime_s: Optional[float] = None,
    ) -> Tuple[Deployment, float]:
        """Record, pay downtime for, and redeploy one rescale."""
        target = {op: patterns[op](now) for op in patterns}
        result.events.append(
            RescaleEvent(
                time_s=now,
                old_parallelism=deployment.parallelism,
                new_parallelism=dict(fitted),
                reason=reason,
            )
        )
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.event(
                "sim",
                "controller.rescale",
                now,
                cat="controller",
                args={
                    "old_tasks": deployment.total_tasks,
                    "new_tasks": sum(fitted.values()),
                    "new_parallelism": _parallelism_str(fitted),
                    "reason": reason,
                },
            )
        if self.registry is not None:
            self.registry.counter(
                "controller_rescales_total", help="Rescales enacted."
            ).inc()
        downtime_start = now
        now = self._apply_downtime(result, now, target, fitted, downtime_s=downtime_s)
        if tr is not None and tr.enabled:
            tr.span(
                "sim",
                "controller.rescale.downtime",
                downtime_start,
                now,
                cat="controller",
            )
        self._flush_diagnosis(deployment)
        rollback = dict(deployment.parallelism)
        return self._attempt_deploy(
            result, now, patterns, fitted, reason, health, rollback
        )

    def _attempt_deploy(
        self,
        result: AdaptiveRunResult,
        now: float,
        patterns: Mapping[str, RatePattern],
        fitted: Mapping[str, int],
        reason: str,
        health: Optional[ClusterHealth],
        rollback: Mapping[str, int],
    ) -> Tuple[Deployment, float]:
        """Start a new configuration through the control-chaos gate.

        Without a control-chaos view this is a plain :meth:`deploy`.
        With one, the deploy can fail: **unguarded**, the controller
        believes it succeeded while the job is actually down (the
        undetected-failure model — all engine workers dead until the
        next reconfiguration); **guarded**, failures get bounded retries
        with exponential backoff (each retry paying its backoff as
        extra downtime), then a rollback to the previous configuration,
        and a terminal failure leaves a down engine that the guard's
        zombie-recovery path redeploys on the next un-gated round.
        """
        view = self._control_view
        guard = self._guard
        target = {op: patterns[op](now) for op in patterns}
        ok, extra_delay_s = (True, 0.0) if view is None else view.deploy_attempt(now)
        if not ok:
            self._observe_deploy_failed(now, reason)
            if guard is not None:
                guard.deploy_failed_this_round = True
                for attempt in range(1, guard.config.deploy_retry_limit + 1):
                    backoff_s = guard.retry_backoff_s(attempt)
                    self._observe_deploy_retry(now, attempt, backoff_s)
                    now = self._apply_downtime(
                        result, now, target, fitted, downtime_s=backoff_s
                    )
                    ok, extra_delay_s = view.deploy_attempt(now)
                    if ok:
                        break
                    self._observe_deploy_failed(now, reason)
                if not ok:
                    # Retries exhausted: fall back to the last known
                    # good configuration and try once more.
                    budget = None if health is None else health.total_slots()
                    fitted = self._fit_to_cluster(rollback, budget=budget)
                    reason = f"{reason}:rollback"
                    self._observe_rollback(now, fitted)
                    ok, extra_delay_s = view.deploy_attempt(now)
                    if not ok:
                        self._observe_deploy_failed(now, reason)
        if ok and extra_delay_s > 0:
            tr = self.tracer
            if tr is not None and tr.enabled:
                tr.event(
                    "sim",
                    "controller.deploy.delayed",
                    now,
                    cat="controller",
                    args={"delay_s": extra_delay_s},
                )
            now = self._apply_downtime(
                result, now, target, fitted, downtime_s=extra_delay_s
            )
        if guard is not None:
            # New configuration, new contention regime: stale medians
            # must not poison the outlier test.
            guard.reset_history()
        deployment = self.deploy(
            {op: TimeShiftedRate(patterns[op], now) for op in patterns},
            parallelism=fitted,
            started_at_s=now,
            health=health,
            trigger=reason,
        )
        self._zombie = not ok
        if not ok:
            # The controller believes this deployment is live; it is
            # not. Engine truth: every worker down, zero throughput,
            # total backpressure, until recovery redeploys.
            self._kill_engine(deployment.engine)
        return deployment, now

    def _kill_engine(self, engine: FluidSimulation) -> None:
        n = len(engine.cluster.workers)
        engine.apply_worker_factors(
            np.ones(n), np.ones(n), np.ones(n), np.zeros(n, dtype=bool)
        )

    def _observe_deploy_failed(self, now: float, reason: str) -> None:
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.event(
                "sim",
                "controller.deploy.failed",
                now,
                cat="controller",
                args={"reason": reason},
            )
        if self.registry is not None:
            self.registry.counter(
                "controller_deploy_failures_total",
                help="Deploy attempts failed by control-plane chaos.",
            ).inc()

    def _observe_deploy_retry(
        self, now: float, attempt: int, backoff_s: float
    ) -> None:
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.event(
                "sim",
                "controller.deploy.retry",
                now,
                cat="controller",
                args={"attempt": attempt, "backoff_s": backoff_s},
            )
        if self.registry is not None:
            self.registry.counter(
                "controller_deploy_retries_total",
                help="Deploy retries after a failed attempt.",
            ).inc()

    def _observe_rollback(
        self, now: float, parallelism: Mapping[str, int]
    ) -> None:
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.event(
                "sim",
                "controller.rollback",
                now,
                cat="controller",
                args={"parallelism": _parallelism_str(parallelism)},
            )
        if self.registry is not None:
            self.registry.counter(
                "controller_rollbacks_total",
                help="Rollbacks to the last known good configuration.",
            ).inc()

    def _flush_diagnosis(self, deployment: Deployment) -> None:
        """Flush a retiring engine's diagnosis aggregates into the trace."""
        diag = getattr(deployment.engine, "diagnosis", None)
        if diag is not None:
            diag.flush(self.tracer)

    def _observe_suppressed(self, now: float, reason: str) -> None:
        """A wanted replan deferred by the activation/cooldown gate."""
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.event(
                "sim",
                "controller.rescale.suppressed",
                now,
                cat="controller",
                args={"reason": reason},
            )
        if self.registry is not None:
            self.registry.counter(
                "controller_rescales_suppressed_total",
                help="Replans deferred by the rescale gate.",
            ).inc()

    def _recovery_downtime(self, deployment: Deployment, worker_id: int) -> float:
        """Downtime for recovering a crashed worker's state.

        Flat ``rescale_downtime_s`` when the checkpoint model is off;
        otherwise restart plus restoring the worker's durable state plus
        replaying everything since its last checkpoint
        (:func:`repro.faults.recovery_downtime`).
        """
        cfg = self.config
        engine = deployment.engine
        ids = [w.worker_id for w in engine.cluster.workers]
        if not cfg.checkpoint.enabled or worker_id not in ids:
            return cfg.rescale_downtime_s
        idx = ids.index(worker_id)
        durable = float(engine.durable_state_bytes()[idx])
        since = max(0.0, engine.time_s - engine.last_checkpoint_s)
        return recovery_downtime(cfg.checkpoint, cfg.rescale_downtime_s, durable, since)

    def _drain_samples(
        self, deployment: Deployment, result: AdaptiveRunResult
    ) -> None:
        series = deployment.engine.metrics.job_series(deployment.graph.job_id)
        fresh = series[deployment.samples_taken :]
        deployment.samples_taken = len(series)
        for sample in fresh:
            result.samples.append(
                TimelineSample(
                    time_s=deployment.started_at_s + sample.time_s,
                    target_rate=sample.target_rate,
                    throughput=sample.throughput,
                    backpressure=sample.backpressure,
                    latency_s=sample.latency_s,
                    total_tasks=deployment.total_tasks,
                )
            )

    def _apply_downtime(
        self,
        result: AdaptiveRunResult,
        now: float,
        target: Mapping[str, float],
        new_parallelism: Mapping[str, int],
        downtime_s: Optional[float] = None,
    ) -> float:
        """Append restart-downtime samples and advance the clock.

        ``downtime_s`` overrides the flat restart cost (crash recovery
        with the checkpoint model enabled); the clock advances by a
        whole number of simulation steps so back-to-back rescales never
        double-count a partial step's downtime.
        """
        cfg = self.config
        total_target = float(sum(target.values()))
        total_tasks = sum(new_parallelism.values())
        if downtime_s is None:
            downtime_s = cfg.rescale_downtime_s
        steps = int(round(downtime_s / cfg.sim.dt))
        for i in range(steps):
            result.samples.append(
                TimelineSample(
                    time_s=now + (i + 1) * cfg.sim.dt,
                    target_rate=total_target,
                    throughput=0.0,
                    backpressure=1.0,
                    latency_s=0.0,
                    total_tasks=total_tasks,
                )
            )
        return now + steps * cfg.sim.dt

    # ------------------------------------------------------------------
    # Controlled accuracy experiment (section 6.4.1 / Table 4)
    # ------------------------------------------------------------------
    def run_controlled_steps(
        self,
        initial_rates: Mapping[str, float],
        rate_steps: List[Mapping[str, float]],
        settle_s: float = 120.0,
        measure_s: float = 180.0,
        initial_parallelism: Optional[Mapping[str, int]] = None,
    ) -> List["StepOutcome"]:
        """Vary the rate stepwise and trigger one DS2 decision per step.

        Per the paper's accuracy experiment: the starting configuration
        is tuned (optimal parallelism and placement for the initial
        rate); each step changes the target rate, lets metrics settle,
        triggers exactly one scaling action, and measures the outcome.
        """
        if initial_parallelism is None:
            initial_parallelism = self.initial_parallelism(initial_rates)
        minimal_oracle = operator_rates_from_unit_costs(
            self.graph, self.profile(), self.cluster
        )
        outcomes: List[StepOutcome] = []
        now = 0.0
        deployment = self.deploy(
            dict(initial_rates), parallelism=initial_parallelism, started_at_s=now
        )
        current_rates = dict(initial_rates)

        for step_index, step_rates in enumerate(rate_steps, start=1):
            # Rate change: replace the engine's drive rates by redeploying
            # the same configuration under the new rates (no downtime for
            # a pure rate change), then let metrics settle.
            current_rates = {op: float(r) for op, r in step_rates.items()}
            engine = FluidSimulation(
                deployment.physical,
                self.cluster,
                deployment.plan,
                {(deployment.graph.job_id, op): r for op, r in current_rates.items()},
                config=self.config.sim,
                network_cap_bytes_per_s=self.network_cap,
                tracer=self.tracer,
                registry=self.registry,
            )
            engine.trace_time_offset_s = now
            deployment = Deployment(
                graph=deployment.graph,
                physical=deployment.physical,
                plan=deployment.plan,
                engine=engine,
                started_at_s=now,
            )
            deployment.engine.run_until(settle_s)
            now += settle_s

            rates = aggregate_operator_rates(
                deployment.physical, deployment.engine.metrics.task_rates()
            )
            decision = self.ds2.decide(
                rates, current_rates, current_parallelism=deployment.parallelism
            )
            if decision.changed:
                now += self.config.rescale_downtime_s
                deployment = self.deploy(
                    dict(current_rates),
                    parallelism=self._fit_to_cluster(decision.parallelism),
                    started_at_s=now,
                )
            summary = deployment.engine.run(measure_s, warmup_s=measure_s * 0.3)
            now += measure_s
            job = summary.only
            minimal_decision = self.ds2.decide(minimal_oracle, current_rates)
            outcomes.append(
                StepOutcome(
                    step=step_index,
                    target_rate=job.target_rate,
                    throughput=job.throughput,
                    backpressure=job.backpressure,
                    total_tasks=deployment.total_tasks,
                    minimal_tasks=minimal_decision.total_tasks(),
                )
            )
        return outcomes


@dataclass(frozen=True)
class StepOutcome:
    """One row of the Table 4 accuracy experiment."""

    step: int
    target_rate: float
    throughput: float
    backpressure: float
    total_tasks: int
    minimal_tasks: int

    @property
    def meets_throughput(self) -> bool:
        return self.throughput >= self.target_rate * 0.95

    @property
    def over_provisioned(self) -> bool:
        return self.total_tasks > self.minimal_tasks
