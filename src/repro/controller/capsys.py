"""The CAPSys controller: auto-scaling and placement in concert.

Implements the workflow of paper Figure 6 against the fluid simulator:
profile once, let DS2 pick parallelism, let CAPS (or a baseline
strategy) place tasks, deploy, monitor, and reconfigure when DS2 asks
for a different parallelism. Reconfigurations pay a restart downtime
during which throughput is zero and backpressure is total, mirroring a
Flink stop/savepoint/restart cycle.

The same controller drives the baseline placement policies so that the
auto-scaling experiments (paper section 6.4) compare placement
strategies under an otherwise identical control loop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.dataflow.cluster import Cluster
from repro.dataflow.graph import LogicalGraph
from repro.dataflow.physical import PhysicalGraph
from repro.core.cost_model import CostModel, TaskCosts, UnitCosts
from repro.core.plan import PlacementPlan
from repro.controller.events import AdaptiveRunResult, RescaleEvent, TimelineSample
from repro.controller.profiler import CostProfiler, OperatorKey
from repro.observability import MetricRegistry, Tracer
from repro.placement.base import PlacementStrategy
from repro.placement.caps import CapsStrategy
from repro.scaling.ds2 import DS2Controller, ScalingDecision
from repro.scaling.rates import OperatorRates, aggregate_operator_rates
from repro.simulator.engine import FluidSimulation, SimulationConfig
from repro.workloads.rates import ConstantRate, RatePattern, TimeShiftedRate


@dataclass(frozen=True)
class ControllerConfig:
    """Control-loop parameters (paper section 6.4 uses 90 s activation
    time and a 5 s policy interval)."""

    policy_interval_s: float = 5.0
    activation_time_s: float = 90.0
    rescale_downtime_s: float = 10.0
    #: DS2 plans to use this fraction of each task's true rate; below
    #: 1.0 leaves headroom for transient load peaks (GC spikes) and for
    #: co-location interference the uncontended bootstrap oracle cannot
    #: see (RocksDB compaction), which the paper's testbed sizing
    #: implicitly had.
    ds2_utilisation_target: float = 0.85
    profiling_rate: float = 100.0
    profiling_duration_s: float = 120.0
    autotune_timeout_s: float = 5.0
    search_timeout_s: float = 5.0
    #: Placement-search backend: ``sequential``, ``thread``, or
    #: ``process`` (true multicore; see repro.core.parallel_proc).
    search_backend: str = "sequential"
    #: Worker count for the parallel search backends (None: one per core).
    search_jobs: Optional[int] = None
    seed: int = 0
    sim: SimulationConfig = field(default_factory=SimulationConfig)

    def __post_init__(self) -> None:
        if self.policy_interval_s <= 0:
            raise ValueError("policy_interval_s must be positive")
        if self.activation_time_s < 0 or self.rescale_downtime_s < 0:
            raise ValueError("times must be non-negative")


@dataclass
class Deployment:
    """One running configuration of the job."""

    graph: LogicalGraph
    physical: PhysicalGraph
    plan: PlacementPlan
    engine: FluidSimulation
    started_at_s: float
    samples_taken: int = 0

    @property
    def parallelism(self) -> Dict[str, int]:
        return self.graph.parallelism_map()

    @property
    def total_tasks(self) -> int:
        return len(self.physical)


def operator_rates_from_unit_costs(
    graph: LogicalGraph,
    unit_costs: Mapping[OperatorKey, UnitCosts],
    cluster: Cluster,
) -> Dict[OperatorKey, OperatorRates]:
    """Uncontended operator rates implied by profiled unit costs.

    The true rate of one task running alone is the inverse of its
    per-record service time on the reference worker. Used to bootstrap
    DS2 before any live metrics exist, and as the "minimum required
    resources" oracle of the Table 4 accuracy analysis.
    """
    spec = cluster.workers[0].spec
    rates: Dict[OperatorKey, OperatorRates] = {}
    for op in graph.topological_order():
        key = (graph.job_id, op)
        uc = unit_costs[key]
        service = (
            uc.cpu_per_record
            + uc.io_bytes_per_record / spec.disk_bandwidth
            + uc.selectivity * uc.net_bytes_per_record / spec.network_bandwidth
        )
        true_rate = 1.0 / service if service > 0 else 1e12
        rates[key] = OperatorRates(
            true_rate_per_task=true_rate,
            observed_rate=1.0,
            observed_output_rate=uc.selectivity,
            busy_fraction=1.0,
        )
    return rates


def _parallelism_str(parallelism: Mapping[str, int]) -> str:
    """Compact deterministic rendering for trace args (plain scalar)."""
    return ",".join(f"{op}={p}" for op, p in sorted(parallelism.items()))


class CAPSysController:
    """Adaptive controller for one streaming job on one cluster.

    Args:
        graph: The job's logical graph (parallelism values are the
            starting configuration unless DS2 overrides them).
        cluster: The worker cluster.
        strategy: ``"caps"`` (build a CAPS strategy internally) or any
            :class:`~repro.placement.base.PlacementStrategy` instance
            (the baselines). Seeded strategies are reseeded from the
            controller's RNG before every placement so baseline
            randomness varies across reconfigurations, reproducibly.
        config: Control-loop parameters.
        unit_costs: Pre-computed profile; when omitted, :meth:`profile`
            runs the profiling job on first use.
        tracer: Optional :class:`~repro.observability.Tracer` threaded
            through every engine and strategy this controller builds:
            the adaptive loop emits sim-domain deploy / DS2-decision /
            rescale events (and a rescale downtime span) on the run's
            absolute simulated clock, stitching one timeline of
            ticks -> decisions -> search spans -> restarts.
        registry: Optional :class:`~repro.observability.MetricRegistry`
            shared with the engines and the placement strategy;
            controller-level counters track deploys, DS2 decisions,
            and rescales.
    """

    def __init__(
        self,
        graph: LogicalGraph,
        cluster: Cluster,
        strategy: Union[str, PlacementStrategy] = "caps",
        config: Optional[ControllerConfig] = None,
        unit_costs: Optional[Mapping[OperatorKey, UnitCosts]] = None,
        network_cap_bytes_per_s: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.cluster = cluster
        self.config = config or ControllerConfig()
        self.strategy_spec = strategy
        self.network_cap = network_cap_bytes_per_s
        self.tracer = tracer
        self.registry = registry
        self._unit_costs: Optional[Dict[OperatorKey, UnitCosts]] = (
            dict(unit_costs) if unit_costs is not None else None
        )
        self._rng = random.Random(self.config.seed)
        self.ds2 = DS2Controller(
            graph,
            max_parallelism=cluster.total_slots,
            utilisation_target=self.config.ds2_utilisation_target,
        )

    # ------------------------------------------------------------------
    # Workflow steps (Figure 6)
    # ------------------------------------------------------------------
    def profile(self) -> Dict[OperatorKey, UnitCosts]:
        """Step 2: run (or return the cached) profiling job."""
        if self._unit_costs is None:
            profiler = CostProfiler(
                worker_spec=self.cluster.workers[0].spec,
                profiling_rate=self.config.profiling_rate,
                duration_s=self.config.profiling_duration_s,
                config=self.config.sim,
            )
            self._unit_costs = profiler.profile(self.graph)
        return dict(self._unit_costs)

    def _fit_to_cluster(self, parallelism: Mapping[str, int]) -> Dict[str, int]:
        """Cap a scaling decision to the cluster's slot budget.

        DS2 with contention-corrupted metrics can demand more tasks than
        the (fixed) cluster has slots; a real deployment cannot grant
        that, so the largest operators are trimmed first until the
        decision fits. Sources are never trimmed below their configured
        parallelism.
        """
        fitted = dict(parallelism)
        budget = self.cluster.total_slots
        sources = set(self.graph.sources())
        while sum(fitted.values()) > budget:
            candidates = [
                op for op, p in fitted.items() if p > 1 and op not in sources
            ]
            if not candidates:
                raise RuntimeError(
                    "scaling decision cannot fit the cluster even at "
                    "parallelism 1 per operator"
                )
            biggest = max(candidates, key=lambda op: fitted[op])
            fitted[biggest] -= 1
        return fitted

    def initial_parallelism(
        self, target_rates: Mapping[str, float]
    ) -> Dict[str, int]:
        """Step 3 at deployment time: DS2 from profiled unit costs."""
        rates = operator_rates_from_unit_costs(
            self.graph, self.profile(), self.cluster
        )
        decision = self.ds2.decide(rates, target_rates)
        return self._fit_to_cluster(decision.parallelism)

    def _make_strategy(
        self, source_rates: Mapping[Tuple[str, str], float]
    ) -> PlacementStrategy:
        if isinstance(self.strategy_spec, str):
            if self.strategy_spec != "caps":
                raise ValueError(f"unknown strategy {self.strategy_spec!r}")
            unit_costs = self.profile()
            return CapsStrategy(
                source_rates=source_rates,
                unit_costs_provider=lambda physical: unit_costs,
                backend=self.config.search_backend,
                jobs=self.config.search_jobs,
                autotune_timeout_s=self.config.autotune_timeout_s,
                search_timeout_s=self.config.search_timeout_s,
                tracer=self.tracer,
                registry=self.registry,
            )
        strategy = self.strategy_spec
        if hasattr(strategy, "seed"):
            strategy.seed = self._rng.randrange(2**31)
        if isinstance(strategy, CapsStrategy):
            strategy.source_rates = dict(source_rates)
            strategy.tracer = self.tracer
            strategy.registry = self.registry
        return strategy

    def place(
        self,
        physical: PhysicalGraph,
        target_rates: Mapping[str, float],
    ) -> PlacementPlan:
        """Step 4: compute the placement for a physical graph."""
        source_rates = {
            (self.graph.job_id, op): float(rate) for op, rate in target_rates.items()
        }
        strategy = self._make_strategy(source_rates)
        return strategy.place_validated(physical, self.cluster)

    def deploy(
        self,
        target_rates: Mapping[str, Union[float, RatePattern]],
        parallelism: Optional[Mapping[str, int]] = None,
        started_at_s: float = 0.0,
    ) -> Deployment:
        """Steps 3-6: scale, place, and start an engine."""
        plain_rates = {
            op: (rate(0.0) if isinstance(rate, RatePattern) else float(rate))
            for op, rate in target_rates.items()
        }
        if parallelism is None:
            parallelism = self.initial_parallelism(plain_rates)
        scaled = self.graph.with_parallelism(dict(parallelism))
        physical = PhysicalGraph.expand(scaled)
        plan = self.place(physical, plain_rates)
        engine = FluidSimulation(
            physical,
            self.cluster,
            plan,
            {(scaled.job_id, op): rate for op, rate in target_rates.items()},
            config=self.config.sim,
            network_cap_bytes_per_s=self.network_cap,
            tracer=self.tracer,
            registry=self.registry,
        )
        engine.trace_time_offset_s = started_at_s
        deployment = Deployment(
            graph=scaled,
            physical=physical,
            plan=plan,
            engine=engine,
            started_at_s=started_at_s,
        )
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.event(
                "sim",
                "controller.deploy",
                started_at_s,
                cat="controller",
                args={
                    "total_tasks": deployment.total_tasks,
                    "parallelism": _parallelism_str(deployment.parallelism),
                },
            )
        if self.registry is not None:
            self.registry.counter(
                "controller_deploys_total", help="Deployments started."
            ).inc()
            self.registry.gauge(
                "controller_total_tasks",
                help="Tasks in the current deployment.",
            ).set(deployment.total_tasks)
        return deployment

    # ------------------------------------------------------------------
    # Adaptive loop (section 6.4.2)
    # ------------------------------------------------------------------
    def run_adaptive(
        self,
        patterns: Mapping[str, RatePattern],
        duration_s: float,
        initial_parallelism: Optional[Mapping[str, int]] = None,
    ) -> AdaptiveRunResult:
        """Run under a variable workload, letting DS2 trigger rescaling.

        Args:
            patterns: Target-rate pattern per source operator, on the
                experiment's absolute clock.
            duration_s: Total experiment duration (downtime included).
            initial_parallelism: Starting parallelism (the convergence
                experiment starts every operator at 1).

        Returns:
            The stitched timeline with all enacted scaling decisions.
        """
        cfg = self.config
        result = AdaptiveRunResult()
        deployment = self.deploy(
            {op: TimeShiftedRate(p, 0.0) for op, p in patterns.items()},
            parallelism=initial_parallelism,
            started_at_s=0.0,
        )
        now = 0.0
        last_rescale = 0.0

        while now < duration_s - 1e-9:
            horizon = min(now + cfg.policy_interval_s, duration_s)
            deployment.engine.run_until(horizon - deployment.started_at_s)
            now = deployment.started_at_s + deployment.engine.time_s
            self._drain_samples(deployment, result)

            if now - last_rescale < cfg.activation_time_s or now >= duration_s - 1e-9:
                continue
            target = {op: patterns[op](now) for op in patterns}
            rates = aggregate_operator_rates(
                deployment.physical, deployment.engine.metrics.task_rates()
            )
            decision = self.ds2.decide(
                rates, target, current_parallelism=deployment.parallelism
            )
            tr = self.tracer
            if tr is not None and tr.enabled:
                tr.event(
                    "sim",
                    "ds2.decision",
                    now,
                    cat="controller",
                    args={
                        "changed": decision.changed,
                        "parallelism": _parallelism_str(decision.parallelism),
                    },
                )
            if self.registry is not None:
                self.registry.counter(
                    "controller_ds2_decisions_total",
                    help="DS2 scaling decisions evaluated.",
                ).inc()
            if not decision.changed:
                continue
            fitted = self._fit_to_cluster(decision.parallelism)
            result.events.append(
                RescaleEvent(
                    time_s=now,
                    old_parallelism=deployment.parallelism,
                    new_parallelism=dict(fitted),
                )
            )
            if tr is not None and tr.enabled:
                tr.event(
                    "sim",
                    "controller.rescale",
                    now,
                    cat="controller",
                    args={
                        "old_tasks": deployment.total_tasks,
                        "new_tasks": sum(fitted.values()),
                        "new_parallelism": _parallelism_str(fitted),
                    },
                )
            if self.registry is not None:
                self.registry.counter(
                    "controller_rescales_total", help="Rescales enacted."
                ).inc()
            downtime_start = now
            now = self._apply_downtime(result, now, target, fitted)
            if tr is not None and tr.enabled:
                tr.span(
                    "sim",
                    "controller.rescale.downtime",
                    downtime_start,
                    now,
                    cat="controller",
                )
            deployment = self.deploy(
                {
                    op: TimeShiftedRate(patterns[op], now)
                    for op in patterns
                },
                parallelism=fitted,
                started_at_s=now,
            )
            last_rescale = now
        return result

    def _drain_samples(
        self, deployment: Deployment, result: AdaptiveRunResult
    ) -> None:
        series = deployment.engine.metrics.job_series(deployment.graph.job_id)
        fresh = series[deployment.samples_taken :]
        deployment.samples_taken = len(series)
        for sample in fresh:
            result.samples.append(
                TimelineSample(
                    time_s=deployment.started_at_s + sample.time_s,
                    target_rate=sample.target_rate,
                    throughput=sample.throughput,
                    backpressure=sample.backpressure,
                    latency_s=sample.latency_s,
                    total_tasks=deployment.total_tasks,
                )
            )

    def _apply_downtime(
        self,
        result: AdaptiveRunResult,
        now: float,
        target: Mapping[str, float],
        new_parallelism: Mapping[str, int],
    ) -> float:
        """Append restart-downtime samples and advance the clock."""
        cfg = self.config
        total_target = float(sum(target.values()))
        total_tasks = sum(new_parallelism.values())
        steps = int(round(cfg.rescale_downtime_s / cfg.sim.dt))
        for i in range(steps):
            result.samples.append(
                TimelineSample(
                    time_s=now + (i + 1) * cfg.sim.dt,
                    target_rate=total_target,
                    throughput=0.0,
                    backpressure=1.0,
                    latency_s=0.0,
                    total_tasks=total_tasks,
                )
            )
        return now + steps * cfg.sim.dt

    # ------------------------------------------------------------------
    # Controlled accuracy experiment (section 6.4.1 / Table 4)
    # ------------------------------------------------------------------
    def run_controlled_steps(
        self,
        initial_rates: Mapping[str, float],
        rate_steps: List[Mapping[str, float]],
        settle_s: float = 120.0,
        measure_s: float = 180.0,
        initial_parallelism: Optional[Mapping[str, int]] = None,
    ) -> List["StepOutcome"]:
        """Vary the rate stepwise and trigger one DS2 decision per step.

        Per the paper's accuracy experiment: the starting configuration
        is tuned (optimal parallelism and placement for the initial
        rate); each step changes the target rate, lets metrics settle,
        triggers exactly one scaling action, and measures the outcome.
        """
        if initial_parallelism is None:
            initial_parallelism = self.initial_parallelism(initial_rates)
        minimal_oracle = operator_rates_from_unit_costs(
            self.graph, self.profile(), self.cluster
        )
        outcomes: List[StepOutcome] = []
        now = 0.0
        deployment = self.deploy(
            dict(initial_rates), parallelism=initial_parallelism, started_at_s=now
        )
        current_rates = dict(initial_rates)

        for step_index, step_rates in enumerate(rate_steps, start=1):
            # Rate change: replace the engine's drive rates by redeploying
            # the same configuration under the new rates (no downtime for
            # a pure rate change), then let metrics settle.
            current_rates = {op: float(r) for op, r in step_rates.items()}
            engine = FluidSimulation(
                deployment.physical,
                self.cluster,
                deployment.plan,
                {(deployment.graph.job_id, op): r for op, r in current_rates.items()},
                config=self.config.sim,
                network_cap_bytes_per_s=self.network_cap,
                tracer=self.tracer,
                registry=self.registry,
            )
            engine.trace_time_offset_s = now
            deployment = Deployment(
                graph=deployment.graph,
                physical=deployment.physical,
                plan=deployment.plan,
                engine=engine,
                started_at_s=now,
            )
            deployment.engine.run_until(settle_s)
            now += settle_s

            rates = aggregate_operator_rates(
                deployment.physical, deployment.engine.metrics.task_rates()
            )
            decision = self.ds2.decide(
                rates, current_rates, current_parallelism=deployment.parallelism
            )
            if decision.changed:
                now += self.config.rescale_downtime_s
                deployment = self.deploy(
                    dict(current_rates),
                    parallelism=self._fit_to_cluster(decision.parallelism),
                    started_at_s=now,
                )
            summary = deployment.engine.run(measure_s, warmup_s=measure_s * 0.3)
            now += measure_s
            job = summary.only
            minimal_decision = self.ds2.decide(minimal_oracle, current_rates)
            outcomes.append(
                StepOutcome(
                    step=step_index,
                    target_rate=job.target_rate,
                    throughput=job.throughput,
                    backpressure=job.backpressure,
                    total_tasks=deployment.total_tasks,
                    minimal_tasks=minimal_decision.total_tasks(),
                )
            )
        return outcomes


@dataclass(frozen=True)
class StepOutcome:
    """One row of the Table 4 accuracy experiment."""

    step: int
    target_rate: float
    throughput: float
    backpressure: float
    total_tasks: int
    minimal_tasks: int

    @property
    def meets_throughput(self) -> bool:
        return self.throughput >= self.target_rate * 0.95

    @property
    def over_provisioned(self) -> bool:
        return self.total_tasks > self.minimal_tasks
