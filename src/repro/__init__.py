"""CAPSys reproduction: contention-aware task placement for data stream processing.

This package reproduces the system described in

    Wang, Huang, Wang, Kalavri, Matta.
    "CAPSys: Contention-aware task placement for data stream processing."
    EuroSys 2025. https://doi.org/10.1145/3689031.3696085

The paper integrates its placement strategy with Apache Flink; this
reproduction implements every substrate in pure Python (see DESIGN.md):

- :mod:`repro.dataflow` -- logical/physical dataflow graphs and slot-based
  worker clusters (the Flink resource model of paper section 2.1).
- :mod:`repro.simulator` -- a deterministic fluid-flow stream-processing
  simulator with per-worker CPU, disk-I/O, and network contention and
  credit-style backpressure (replaces the AWS Flink testbed).
- :mod:`repro.workloads` -- the six evaluation queries (Q1-sliding,
  Q2-join, Q3-inf, Q4-join, Q5-aggregate, Q6-session) and workload
  generators (replaces Nexmark + the Crayfish inference query).
- :mod:`repro.scaling` -- the DS2 auto-scaling controller.
- :mod:`repro.core` -- CAPS itself: the cost model, the outer/inner DFS
  plan search with duplicate elimination, threshold pruning, exploration
  reordering, pareto selection, and threshold auto-tuning.
- :mod:`repro.placement` -- baseline strategies: Flink ``default``,
  Flink ``evenly``, random search, and the ODRP MILP baseline.
- :mod:`repro.controller` -- the CAPSys adaptive resource controller
  wiring profiling, DS2, and CAPS together (paper section 5).
- :mod:`repro.experiments` -- shared experiment harness used by the
  benchmark suite to regenerate every table and figure of the paper.
"""

from repro.dataflow.graph import LogicalGraph, OperatorSpec
from repro.dataflow.physical import PhysicalGraph, Task
from repro.dataflow.cluster import Cluster, Worker, WorkerSpec
from repro.core.plan import PlacementPlan
from repro.core.cost_model import CostModel, TaskCosts
from repro.core.search import CapsSearch, SearchResult
from repro.core.autotune import ThresholdAutoTuner
from repro.controller.capsys import CAPSysController

__all__ = [
    "LogicalGraph",
    "OperatorSpec",
    "PhysicalGraph",
    "Task",
    "Cluster",
    "Worker",
    "WorkerSpec",
    "PlacementPlan",
    "CostModel",
    "TaskCosts",
    "CapsSearch",
    "SearchResult",
    "ThresholdAutoTuner",
    "CAPSysController",
]

__version__ = "1.0.0"
