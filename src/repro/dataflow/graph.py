"""Logical dataflow graphs.

A streaming query is a directed acyclic graph whose vertices are *logical
operators* and whose edges are *data streams* (paper section 2.1). Each
operator carries a resource profile describing what one record costs to
process across the three resource dimensions the CAPS cost model tracks:
compute, state access (disk I/O), and network output.

The resource profile fields correspond to the quantities CAPSys measures
during its cost-profiling phase (paper section 5.1): CPU utilisation,
uncompressed bytes read from / written to the state backend, and bytes
emitted, all normalised per record.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class Partitioning(enum.Enum):
    """How records flow from an upstream operator to a downstream one.

    ``HASH`` and ``REBALANCE`` create all-to-all physical channels (every
    upstream task connects to every downstream task), which is the shape
    the CAPS network-cost model assumes by default. ``FORWARD`` creates
    one-to-one channels and requires equal parallelism on both ends (the
    shape produced by Flink operator chaining boundaries). ``BROADCAST``
    replicates every record to every downstream task.
    """

    HASH = "hash"
    REBALANCE = "rebalance"
    FORWARD = "forward"
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class GcSpikeProfile:
    """Periodic CPU spike profile, used to model JVM garbage collection.

    The paper observes (section 3.3) that the Q3-inf inference operator
    "triggers garbage collection that introduces periodic CPU utilization
    spikes". The simulator adds ``magnitude`` times the base CPU demand
    during ``duration_s`` seconds out of every ``period_s`` seconds.
    """

    period_s: float = 30.0
    duration_s: float = 5.0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("gc spike period must be positive")
        if not 0 <= self.duration_s <= self.period_s:
            raise ValueError("gc spike duration must lie within the period")
        if self.magnitude < 0:
            raise ValueError("gc spike magnitude must be non-negative")

    def active(self, time_s: float, phase_s: float = 0.0) -> bool:
        """Return True when the spike is active at simulated ``time_s``."""
        return (time_s + phase_s) % self.period_s < self.duration_s


@dataclass(frozen=True)
class OperatorSpec:
    """A logical operator and its per-record resource profile.

    Attributes:
        name: Unique operator name within the query.
        cpu_per_record: CPU-seconds of work to process one input record.
        io_bytes_per_record: State-backend bytes read plus written per
            input record (the paper's state access cost dimension).
        out_record_bytes: Size in bytes of one *output* record, used for
            network accounting on downstream channels.
        selectivity: Output records produced per input record. A windowed
            aggregation has selectivity well below one; a flat-map can
            exceed one.
        is_source: Whether this operator generates records rather than
            consuming an upstream stream.
        state_bytes_per_record: Retained state growth per input record
            (bytes); drives memory-pressure accounting in the simulator.
        gc_spike: Optional periodic CPU spike profile (model inference
            operators in Q3-inf set this).
    """

    name: str
    cpu_per_record: float = 0.0
    io_bytes_per_record: float = 0.0
    out_record_bytes: float = 100.0
    selectivity: float = 1.0
    is_source: bool = False
    state_bytes_per_record: float = 0.0
    gc_spike: Optional[GcSpikeProfile] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operator name must be non-empty")
        for attr in (
            "cpu_per_record",
            "io_bytes_per_record",
            "out_record_bytes",
            "selectivity",
            "state_bytes_per_record",
        ):
            value = getattr(self, attr)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{attr} must be finite and non-negative, got {value!r}")

    @property
    def net_bytes_per_record(self) -> float:
        """Bytes emitted per *input* record (selectivity-adjusted)."""
        return self.selectivity * self.out_record_bytes

    def scaled(self, cpu: float = 1.0, io: float = 1.0, net: float = 1.0) -> "OperatorSpec":
        """Return a copy with resource costs scaled by the given factors.

        Used by the profiler tests and by sensitivity/ablation benchmarks
        to derive heavier or lighter variants of an operator.
        """
        return replace(
            self,
            cpu_per_record=self.cpu_per_record * cpu,
            io_bytes_per_record=self.io_bytes_per_record * io,
            out_record_bytes=self.out_record_bytes * net,
        )


@dataclass(frozen=True)
class LogicalEdge:
    """A data stream between two logical operators."""

    src: str
    dst: str
    partitioning: Partitioning = Partitioning.HASH

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("self-loop edges are not allowed in a streaming DAG")


class GraphValidationError(ValueError):
    """Raised when a logical graph violates a structural invariant."""


class LogicalGraph:
    """A logical streaming query: operators, streams, and parallelism.

    The graph is mutable while being built (``add_operator`` /
    ``add_edge`` / ``set_parallelism``) and validated on demand. The
    physical expansion (:class:`repro.dataflow.physical.PhysicalGraph`)
    consumes a validated logical graph.

    Example:
        >>> g = LogicalGraph("wordcount")
        >>> _ = g.add_operator(OperatorSpec("source", is_source=True))
        >>> _ = g.add_operator(OperatorSpec("count", cpu_per_record=1e-5))
        >>> g.add_edge("source", "count")
        >>> g.set_parallelism("source", 2)
        >>> g.set_parallelism("count", 4)
        >>> g.validate()
        >>> g.total_tasks()
        6
    """

    def __init__(self, name: str, job_id: str = "") -> None:
        if not name:
            raise ValueError("graph name must be non-empty")
        self.name = name
        #: Identifier used to tag tasks in multi-tenant deployments; defaults
        #: to the graph name.
        self.job_id = job_id or name
        self._operators: Dict[str, OperatorSpec] = {}
        self._edges: List[LogicalEdge] = []
        self._parallelism: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operator(self, spec: OperatorSpec, parallelism: int = 1) -> OperatorSpec:
        """Add an operator; returns the spec for chaining convenience."""
        if spec.name in self._operators:
            raise GraphValidationError(f"duplicate operator {spec.name!r}")
        self._operators[spec.name] = spec
        self.set_parallelism(spec.name, parallelism)
        return spec

    def add_edge(
        self, src: str, dst: str, partitioning: Partitioning = Partitioning.HASH
    ) -> None:
        """Connect two previously added operators with a data stream."""
        for endpoint in (src, dst):
            if endpoint not in self._operators:
                raise GraphValidationError(f"unknown operator {endpoint!r}")
        if any(e.src == src and e.dst == dst for e in self._edges):
            raise GraphValidationError(f"duplicate edge {src!r} -> {dst!r}")
        self._edges.append(LogicalEdge(src, dst, partitioning))

    def set_parallelism(self, operator: str, parallelism: int) -> None:
        """Set the number of parallel tasks for an operator.

        In the paper this is decided either manually or by the DS2
        auto-scaling controller (section 2.1).
        """
        if operator not in self._operators:
            raise GraphValidationError(f"unknown operator {operator!r}")
        if parallelism < 1:
            raise GraphValidationError(
                f"parallelism of {operator!r} must be >= 1, got {parallelism}"
            )
        self._parallelism[operator] = int(parallelism)

    def with_parallelism(self, parallelism: Dict[str, int]) -> "LogicalGraph":
        """Return a copy of this graph with the given parallelism settings.

        Operators absent from ``parallelism`` keep their current setting.
        This is the hook the scaling controller uses when effecting a
        reconfiguration: the logical structure is immutable, only the
        physical expansion changes.
        """
        clone = LogicalGraph(self.name, job_id=self.job_id)
        for spec in self._operators.values():
            clone.add_operator(spec, self._parallelism[spec.name])
        for edge in self._edges:
            clone._edges.append(edge)
        for op, p in parallelism.items():
            clone.set_parallelism(op, p)
        return clone

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def operators(self) -> Dict[str, OperatorSpec]:
        return dict(self._operators)

    @property
    def edges(self) -> Tuple[LogicalEdge, ...]:
        return tuple(self._edges)

    def operator(self, name: str) -> OperatorSpec:
        try:
            return self._operators[name]
        except KeyError:
            raise GraphValidationError(f"unknown operator {name!r}") from None

    def parallelism(self, operator: str) -> int:
        if operator not in self._parallelism:
            raise GraphValidationError(f"unknown operator {operator!r}")
        return self._parallelism[operator]

    def parallelism_map(self) -> Dict[str, int]:
        return dict(self._parallelism)

    def sources(self) -> List[str]:
        """Operators marked as sources, in insertion order."""
        return [name for name, spec in self._operators.items() if spec.is_source]

    def sinks(self) -> List[str]:
        """Operators with no outgoing edges, in insertion order."""
        with_out = {e.src for e in self._edges}
        return [name for name in self._operators if name not in with_out]

    def upstream(self, operator: str) -> List[LogicalEdge]:
        return [e for e in self._edges if e.dst == operator]

    def downstream(self, operator: str) -> List[LogicalEdge]:
        return [e for e in self._edges if e.src == operator]

    def total_tasks(self) -> int:
        """Number of physical tasks the current parallelism implies."""
        return sum(self._parallelism[name] for name in self._operators)

    # ------------------------------------------------------------------
    # Validation and ordering
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Operators in a deterministic topological order.

        Ties are broken by insertion order so that plan enumeration and
        simulation are reproducible. Raises
        :class:`GraphValidationError` on cycles.
        """
        order_index = {name: i for i, name in enumerate(self._operators)}
        indegree = {name: 0 for name in self._operators}
        for edge in self._edges:
            indegree[edge.dst] += 1
        ready = sorted(
            (name for name, deg in indegree.items() if deg == 0),
            key=order_index.__getitem__,
        )
        result: List[str] = []
        while ready:
            node = ready.pop(0)
            result.append(node)
            newly_ready = []
            for edge in self._edges:
                if edge.src != node:
                    continue
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    newly_ready.append(edge.dst)
            ready.extend(sorted(newly_ready, key=order_index.__getitem__))
            ready.sort(key=order_index.__getitem__)
        if len(result) != len(self._operators):
            raise GraphValidationError(f"graph {self.name!r} contains a cycle")
        return result

    def validate(self) -> None:
        """Check structural invariants; raise GraphValidationError if broken.

        Invariants: the graph is a non-empty DAG, every source operator is
        marked ``is_source`` and has no upstream edges, every non-source
        operator is reachable from some source, and ``FORWARD`` edges
        connect operators of equal parallelism.
        """
        if not self._operators:
            raise GraphValidationError("graph has no operators")
        self.topological_order()  # raises on cycles

        sources = set(self.sources())
        if not sources:
            raise GraphValidationError("graph has no source operator")
        for name in sources:
            if self.upstream(name):
                raise GraphValidationError(f"source {name!r} has upstream edges")
        for name in self._operators:
            if name not in sources and not self.upstream(name):
                raise GraphValidationError(
                    f"non-source operator {name!r} has no upstream edges"
                )

        reachable = set(sources)
        frontier = list(sources)
        while frontier:
            node = frontier.pop()
            for edge in self.downstream(node):
                if edge.dst not in reachable:
                    reachable.add(edge.dst)
                    frontier.append(edge.dst)
        unreachable = set(self._operators) - reachable
        if unreachable:
            raise GraphValidationError(
                f"operators unreachable from any source: {sorted(unreachable)}"
            )

        for edge in self._edges:
            if edge.partitioning is Partitioning.FORWARD:
                if self._parallelism[edge.src] != self._parallelism[edge.dst]:
                    raise GraphValidationError(
                        f"FORWARD edge {edge.src!r}->{edge.dst!r} requires equal "
                        f"parallelism ({self._parallelism[edge.src]} != "
                        f"{self._parallelism[edge.dst]})"
                    )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __contains__(self, operator: str) -> bool:
        return operator in self._operators

    def __iter__(self) -> Iterator[OperatorSpec]:
        return iter(self._operators.values())

    def __len__(self) -> int:
        return len(self._operators)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogicalGraph({self.name!r}, operators={len(self._operators)}, "
            f"edges={len(self._edges)}, tasks={self.total_tasks()})"
        )


def chain_operators(
    graph: LogicalGraph, chain: Sequence[str], chained_name: str
) -> LogicalGraph:
    """Collapse a linear chain of operators into a single logical operator.

    Models Flink operator chaining (paper section 6.1): CAPS "considers
    any chain as a single operator during profiling and when exploring the
    search space". The chained operator's per-record costs are the sums of
    the members' costs weighted by the record multiplicity at each member,
    its selectivity is the product of the members' selectivities, and its
    output record size is the last member's.

    All chain members must have the same parallelism, form a linear path
    connected by FORWARD or HASH edges, and the interior members must have
    no other edges.
    """
    if len(chain) < 2:
        raise GraphValidationError("a chain needs at least two operators")
    parallelisms = {graph.parallelism(name) for name in chain}
    if len(parallelisms) != 1:
        raise GraphValidationError("chained operators must share one parallelism")
    for first, second in zip(chain, chain[1:]):
        if not any(e.src == first and e.dst == second for e in graph.edges):
            raise GraphValidationError(f"{first!r} -> {second!r} is not an edge")
    interior = set(chain[1:-1])
    for edge in graph.edges:
        touches_interior = edge.src in interior or edge.dst in interior
        inside = edge.src in chain and edge.dst in chain
        if touches_interior and not inside:
            raise GraphValidationError(
                f"operator {edge.src!r}->{edge.dst!r} escapes the chain"
            )

    multiplicity = 1.0
    cpu = io = 0.0
    state = 0.0
    for name in chain:
        spec = graph.operator(name)
        cpu += multiplicity * spec.cpu_per_record
        io += multiplicity * spec.io_bytes_per_record
        state += multiplicity * spec.state_bytes_per_record
        multiplicity *= spec.selectivity
    last = graph.operator(chain[-1])
    first_spec = graph.operator(chain[0])
    merged = OperatorSpec(
        name=chained_name,
        cpu_per_record=cpu,
        io_bytes_per_record=io,
        out_record_bytes=last.out_record_bytes,
        selectivity=multiplicity,
        is_source=first_spec.is_source,
        state_bytes_per_record=state,
        gc_spike=next(
            (graph.operator(n).gc_spike for n in chain if graph.operator(n).gc_spike),
            None,
        ),
    )

    clone = LogicalGraph(graph.name, job_id=graph.job_id)
    chain_set = set(chain)
    for spec in graph:
        if spec.name in chain_set:
            continue
        clone.add_operator(spec, graph.parallelism(spec.name))
    clone.add_operator(merged, graph.parallelism(chain[0]))
    for edge in graph.edges:
        src_in, dst_in = edge.src in chain_set, edge.dst in chain_set
        if src_in and dst_in:
            continue
        src = chained_name if src_in else edge.src
        dst = chained_name if dst_in else edge.dst
        if not any(e.src == src and e.dst == dst for e in clone.edges):
            clone.add_edge(src, dst, edge.partitioning)
    return clone
