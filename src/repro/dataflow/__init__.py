"""Dataflow model: logical graphs, physical execution graphs, and clusters.

This subpackage implements the streaming dataflow concepts of paper
section 2.1 ("Streaming dataflow concepts"):

- a **logical graph** of operators connected by data streams
  (:mod:`repro.dataflow.graph`),
- its expansion into a **physical execution graph** of parallel tasks
  connected by physical data channels (:mod:`repro.dataflow.physical`),
- the slot-oriented **resource model** of homogeneous workers
  (:mod:`repro.dataflow.cluster`), and
- structural validation utilities (:mod:`repro.dataflow.validation`).
"""

from repro.dataflow.graph import LogicalEdge, LogicalGraph, OperatorSpec, Partitioning
from repro.dataflow.physical import Channel, PhysicalGraph, Task
from repro.dataflow.cluster import (
    C5D_4XLARGE,
    Cluster,
    M5D_2XLARGE,
    R5D_XLARGE,
    Worker,
    WorkerSpec,
)

__all__ = [
    "LogicalEdge",
    "LogicalGraph",
    "OperatorSpec",
    "Partitioning",
    "Channel",
    "PhysicalGraph",
    "Task",
    "Cluster",
    "Worker",
    "WorkerSpec",
    "M5D_2XLARGE",
    "C5D_4XLARGE",
    "R5D_XLARGE",
]
