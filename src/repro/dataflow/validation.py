"""Cross-structure validation helpers.

These checks guard the model assumptions of paper section 4.1 before a
search or simulation starts, so that failures surface as clear errors at
deployment time rather than as silently wrong results.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.dataflow.cluster import Cluster
from repro.dataflow.graph import GraphValidationError, LogicalGraph
from repro.dataflow.physical import PhysicalGraph


class DeploymentError(ValueError):
    """Raised when a physical graph cannot be deployed on a cluster."""


def validate_deployment(physical: PhysicalGraph, cluster: Cluster) -> None:
    """Check that ``physical`` fits onto ``cluster``.

    Verifies the standing CAPS assumption that the total number of
    compute slots is sufficient to deploy all tasks, and that no single
    operator exceeds the cluster's slot count (which would make Eq. 2
    unsatisfiable regardless of placement).
    """
    total = len(physical.tasks)
    if not cluster.can_host(total):
        raise DeploymentError(
            f"{total} tasks do not fit in {cluster.total_slots} slots"
        )
    for job_id, operator in physical.operator_keys():
        members = physical.operator_tasks(job_id, operator)
        if len(members) > cluster.total_slots:
            raise DeploymentError(
                f"operator {operator!r} of job {job_id!r} has more tasks "
                f"({len(members)}) than the cluster has slots"
            )


def validate_parallelism_change(
    graph: LogicalGraph, new_parallelism: Dict[str, int]
) -> None:
    """Check a proposed scaling decision against the logical graph."""
    for operator, parallelism in new_parallelism.items():
        if operator not in graph:
            raise GraphValidationError(
                f"scaling decision references unknown operator {operator!r}"
            )
        if parallelism < 1:
            raise GraphValidationError(
                f"scaling decision for {operator!r} must be >= 1, got {parallelism}"
            )
    graph.with_parallelism(new_parallelism).validate()
