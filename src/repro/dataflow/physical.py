"""Physical execution graphs.

Upon deployment, the logical graph is translated to a physical execution
graph (paper Figure 1, step 1): each logical operator is replicated into
``parallelism`` *tasks* and each data stream is instantiated into
*physical data channels* connecting tasks of the upstream and downstream
operators.

The channel structure determines the network-cost accounting of the CAPS
cost model: the paper assumes the output data rate of a task is equally
distributed over its downstream data links ``D(t)`` (Table 1 / Eq. 8), and
only the cross-worker subset ``D_r(f, t)`` contributes to outbound worker
traffic under a placement ``f``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dataflow.graph import (
    GraphValidationError,
    LogicalGraph,
    OperatorSpec,
    Partitioning,
)


@dataclass(frozen=True)
class Task:
    """One parallel instance of a logical operator.

    ``uid`` is globally unique (job id + operator + index) so that
    multi-tenant deployments can merge several physical graphs into one
    task universe without collisions.
    """

    job_id: str
    operator: str
    index: int

    @property
    def uid(self) -> str:
        return f"{self.job_id}/{self.operator}[{self.index}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.uid


@dataclass(frozen=True)
class Channel:
    """A physical data channel between two tasks.

    Attributes:
        src / dst: Endpoint tasks.
        share: Fraction of the source task's output record stream carried
            on this channel. For hash/rebalance partitioning over ``p``
            downstream tasks the share is ``1/p``; a broadcast channel
            carries the full stream (share 1.0); a forward channel carries
            the full stream to its single peer.
        reroutable: True for REBALANCE channels, whose emitter may route
            records to any consumer (softening head-of-line blocking);
            False for key-bound (HASH), one-to-one, and broadcast
            channels.
    """

    src: Task
    dst: Task
    share: float
    reroutable: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"channel share must be in (0, 1], got {self.share}")


class PhysicalGraph:
    """The physical execution graph: tasks plus physical channels.

    Built from a validated :class:`LogicalGraph` via :meth:`expand`, or
    merged from several graphs via :meth:`merge` for the multi-tenant
    experiment (paper section 6.2.2, where "CAPSys views the entire query
    workload as a single dataflow graph and optimizes task placement
    globally").
    """

    def __init__(
        self,
        tasks: Sequence[Task],
        channels: Sequence[Channel],
        logical: Sequence[LogicalGraph],
    ) -> None:
        self._tasks: Tuple[Task, ...] = tuple(tasks)
        self._channels: Tuple[Channel, ...] = tuple(channels)
        self._logical: Tuple[LogicalGraph, ...] = tuple(logical)

        uids = [t.uid for t in self._tasks]
        if len(set(uids)) != len(uids):
            raise GraphValidationError("duplicate task uids in physical graph")

        self._index_of: Dict[str, int] = {t.uid: i for i, t in enumerate(self._tasks)}
        self._by_operator: Dict[Tuple[str, str], List[Task]] = {}
        for task in self._tasks:
            self._by_operator.setdefault((task.job_id, task.operator), []).append(task)
        for members in self._by_operator.values():
            members.sort(key=lambda t: t.index)

        self._out_channels: Dict[str, List[Channel]] = {t.uid: [] for t in self._tasks}
        self._in_channels: Dict[str, List[Channel]] = {t.uid: [] for t in self._tasks}
        for ch in self._channels:
            if ch.src.uid not in self._index_of or ch.dst.uid not in self._index_of:
                raise GraphValidationError("channel endpoint not among tasks")
            self._out_channels[ch.src.uid].append(ch)
            self._in_channels[ch.dst.uid].append(ch)

        self._spec_cache: Dict[Tuple[str, str], OperatorSpec] = {}
        for graph in self._logical:
            for spec in graph:
                self._spec_cache[(graph.job_id, spec.name)] = spec

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def expand(
        cls,
        graph: LogicalGraph,
        skew: Optional[Dict[str, Sequence[float]]] = None,
    ) -> "PhysicalGraph":
        """Expand a logical graph into tasks and channels (Figure 1 step 1).

        Args:
            graph: The validated logical graph.
            skew: Optional per-operator downstream share vectors modelling
                key skew: for a HASH edge into operator ``op`` with
                ``skew[op] = [s_0, ..., s_{p-1}]`` (summing to 1), task
                ``op[i]`` receives fraction ``s_i`` of every upstream
                task's output instead of the uniform ``1/p``. This is how
                a skewed key distribution reaches both the simulator and
                the cost model (paper section 5.2).
        """
        graph.validate()
        skew = dict(skew or {})
        for op, shares in skew.items():
            p = graph.parallelism(op)
            if len(shares) != p:
                raise GraphValidationError(
                    f"skew for {op!r} has {len(shares)} shares, expected {p}"
                )
            total = sum(shares)
            if abs(total - 1.0) > 1e-6:
                raise GraphValidationError(
                    f"skew shares for {op!r} sum to {total}, expected 1"
                )
        tasks: List[Task] = []
        by_op: Dict[str, List[Task]] = {}
        for name in graph.topological_order():
            members = [Task(graph.job_id, name, i) for i in range(graph.parallelism(name))]
            tasks.extend(members)
            by_op[name] = members

        channels: List[Channel] = []
        for edge in graph.edges:
            ups, downs = by_op[edge.src], by_op[edge.dst]
            if edge.partitioning is Partitioning.FORWARD:
                for u, d in zip(ups, downs):
                    channels.append(Channel(u, d, share=1.0))
            elif edge.partitioning is Partitioning.BROADCAST:
                for u in ups:
                    for d in downs:
                        channels.append(Channel(u, d, share=1.0))
            else:  # HASH / REBALANCE: all-to-all
                shares = skew.get(edge.dst)
                if shares is not None and edge.partitioning is Partitioning.HASH:
                    per_dst = list(shares)
                else:
                    per_dst = [1.0 / len(downs)] * len(downs)
                reroutable = edge.partitioning is Partitioning.REBALANCE
                for u in ups:
                    for d, share in zip(downs, per_dst):
                        channels.append(
                            Channel(u, d, share=share, reroutable=reroutable)
                        )
        return cls(tasks, channels, [graph])

    @classmethod
    def merge(cls, graphs: Iterable["PhysicalGraph"]) -> "PhysicalGraph":
        """Merge several physical graphs into one task universe.

        Job ids must be pairwise distinct; tasks and channels are simply
        concatenated since channels never cross job boundaries.
        """
        tasks: List[Task] = []
        channels: List[Channel] = []
        logical: List[LogicalGraph] = []
        job_ids: List[str] = []
        for g in graphs:
            tasks.extend(g.tasks)
            channels.extend(g.channels)
            logical.extend(g.logical_graphs)
            job_ids.extend(lg.job_id for lg in g.logical_graphs)
        if len(set(job_ids)) != len(job_ids):
            raise GraphValidationError("merged graphs must have distinct job ids")
        return cls(tasks, channels, logical)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> Tuple[Task, ...]:
        return self._tasks

    @property
    def channels(self) -> Tuple[Channel, ...]:
        return self._channels

    @property
    def logical_graphs(self) -> Tuple[LogicalGraph, ...]:
        return self._logical

    def index_of(self, task: Task) -> int:
        """Stable dense index of a task (used by the vectorised simulator)."""
        return self._index_of[task.uid]

    def task_by_uid(self, uid: str) -> Task:
        return self._tasks[self._index_of[uid]]

    def operator_tasks(self, job_id: str, operator: str) -> List[Task]:
        """All tasks of one logical operator, sorted by index."""
        return list(self._by_operator[(job_id, operator)])

    def operator_keys(self) -> List[Tuple[str, str]]:
        """All (job_id, operator) pairs, in task order."""
        seen: List[Tuple[str, str]] = []
        for task in self._tasks:
            key = (task.job_id, task.operator)
            if key not in seen:
                seen.append(key)
        return seen

    def spec_of(self, task: Task) -> OperatorSpec:
        """The operator spec governing a task's resource profile."""
        return self._spec_cache[(task.job_id, task.operator)]

    def out_channels(self, task: Task) -> List[Channel]:
        return list(self._out_channels[task.uid])

    def in_channels(self, task: Task) -> List[Channel]:
        return list(self._in_channels[task.uid])

    def downstream_degree(self, task: Task) -> int:
        """``|D(t)|``: number of physical downstream links of a task.

        The paper defines ``D(t)`` as the set of physical downstream data
        links originating from ``t`` (Table 1), with sink tasks assigned
        -1; we return 0 for sinks and let callers treat the network share
        of a sink as zero.
        """
        return len(self._out_channels[task.uid])

    def is_sink_task(self, task: Task) -> bool:
        return not self._out_channels[task.uid]

    def is_source_task(self, task: Task) -> bool:
        return self.spec_of(task).is_source

    def __len__(self) -> int:
        return len(self._tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhysicalGraph(tasks={len(self._tasks)}, "
            f"channels={len(self._channels)}, jobs={len(self._logical)})"
        )
