"""The slot-oriented cluster resource model.

Resources are exposed to the stream-processing scheduler as a set of
homogeneous workers, each with a fixed number of compute slots; a slot
holds at most one task, but co-located tasks share the worker's CPU,
memory, disk, and network bandwidth (paper section 2.1, Figure 1).

Worker presets mirror the AWS EC2 instance types of the paper's
evaluation (sections 3.1, 6.2, 6.3, 6.4). Absolute capacities are chosen
to be plausible for those instance types; the experiments only depend on
their relative magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

GIB = 1024 ** 3
MIB = 1024 ** 2
GBIT = 1_000_000_000 / 8  # bytes/s in one Gbit/s


@dataclass(frozen=True)
class WorkerSpec:
    """Static resource capacities of one worker.

    Attributes:
        cpu_capacity: CPU-seconds of work the worker completes per wall
            second (roughly the physical core count).
        disk_bandwidth: Sustained state-backend I/O bandwidth in bytes/s.
        network_bandwidth: Outbound NIC bandwidth in bytes/s.
        slots: Number of compute slots (one task per slot).
        memory_bytes: Memory available to task state.
        name: Preset label for reporting.
    """

    cpu_capacity: float
    disk_bandwidth: float
    network_bandwidth: float
    slots: int
    memory_bytes: float = 32 * GIB
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.cpu_capacity <= 0:
            raise ValueError("cpu_capacity must be positive")
        if self.disk_bandwidth <= 0:
            raise ValueError("disk_bandwidth must be positive")
        if self.network_bandwidth <= 0:
            raise ValueError("network_bandwidth must be positive")
        if self.slots < 1:
            raise ValueError("a worker needs at least one slot")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")

    def with_slots(self, slots: int) -> "WorkerSpec":
        """Same hardware, different slot count (the paper varies slots/worker)."""
        return replace(self, slots=slots)

    def with_network_bandwidth(self, bandwidth: float) -> "WorkerSpec":
        """Same hardware with a capped NIC (paper section 3.3 caps to 1 Gbps)."""
        return replace(self, network_bandwidth=bandwidth)


#: m5d.2xlarge: 4 cores / 8 vCPUs, 32 GB, 300 GB NVMe SSD, 10 Gbps
#: (paper section 6.2 single-query and multi-tenant experiments).
M5D_2XLARGE = WorkerSpec(
    cpu_capacity=4.0,
    disk_bandwidth=500 * MIB,
    network_bandwidth=10 * GBIT,
    slots=8,
    memory_bytes=32 * GIB,
    name="m5d.2xlarge",
)

#: c5d.4xlarge: 8 cores / 16 vCPUs, 32 GB, 400 GB NVMe SSD, 10 Gbps
#: (paper section 6.3 ODRP comparison).
C5D_4XLARGE = WorkerSpec(
    cpu_capacity=8.0,
    disk_bandwidth=600 * MIB,
    network_bandwidth=10 * GBIT,
    slots=8,
    memory_bytes=32 * GIB,
    name="c5d.4xlarge",
)

#: r5d.xlarge: 2 cores / 4 vCPUs, 32 GB, 150 GB NVMe SSD, 10 Gbps
#: (paper sections 3.1 motivation study and 6.4 auto-scaling experiments).
R5D_XLARGE = WorkerSpec(
    cpu_capacity=2.0,
    disk_bandwidth=300 * MIB,
    network_bandwidth=10 * GBIT,
    slots=4,
    memory_bytes=32 * GIB,
    name="r5d.xlarge",
)


@dataclass(frozen=True)
class Worker:
    """A concrete worker: an id plus its spec."""

    worker_id: int
    spec: WorkerSpec

    @property
    def slots(self) -> int:
        return self.spec.slots


class Cluster:
    """A fixed set of workers connected by the datacentre network.

    The CAPS formulation assumes homogeneous workers (paper section 4.1
    "Model assumptions"); heterogeneous clusters are representable but the
    search's duplicate elimination only treats *identical* workers as
    interchangeable, so heterogeneity degrades pruning, not correctness.

    Attributes:
        link_latency_s: Propagation delay between distinct workers;
            negligible in datacentres (paper section 7) but used by the
            ODRP baseline's latency objective.
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        link_latency_s: float = 0.0005,
    ) -> None:
        if not workers:
            raise ValueError("a cluster needs at least one worker")
        ids = [w.worker_id for w in workers]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate worker ids")
        self._workers: Tuple[Worker, ...] = tuple(
            sorted(workers, key=lambda w: w.worker_id)
        )
        if link_latency_s < 0:
            raise ValueError("link latency must be non-negative")
        self.link_latency_s = link_latency_s

    @classmethod
    def homogeneous(
        cls, spec: WorkerSpec, count: int, link_latency_s: float = 0.0005
    ) -> "Cluster":
        """Build a homogeneous cluster of ``count`` workers of one spec."""
        if count < 1:
            raise ValueError("cluster needs at least one worker")
        return cls([Worker(i, spec) for i in range(count)], link_latency_s)

    # ------------------------------------------------------------------
    @property
    def workers(self) -> Tuple[Worker, ...]:
        return self._workers

    def worker(self, worker_id: int) -> Worker:
        for w in self._workers:
            if w.worker_id == worker_id:
                return w
        raise KeyError(f"no worker with id {worker_id}")

    @property
    def total_slots(self) -> int:
        return sum(w.slots for w in self._workers)

    @property
    def is_homogeneous(self) -> bool:
        return len({w.spec for w in self._workers}) == 1

    def slots_of(self, worker_id: int) -> int:
        return self.worker(worker_id).slots

    def spec_groups(self) -> Dict[WorkerSpec, List[int]]:
        """Worker ids grouped by identical spec (for duplicate elimination)."""
        groups: Dict[WorkerSpec, List[int]] = {}
        for w in self._workers:
            groups.setdefault(w.spec, []).append(w.worker_id)
        return groups

    def can_host(self, task_count: int) -> bool:
        """Whether the cluster has enough slots for ``task_count`` tasks.

        The CAPS model assumes the total number of slots is sufficient to
        deploy all tasks (paper section 4.1).
        """
        return task_count <= self.total_slots

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spec_names = sorted({w.spec.name for w in self._workers})
        return (
            f"Cluster(workers={len(self._workers)}, slots={self.total_slots}, "
            f"specs={spec_names})"
        )
