"""Pareto-front bookkeeping over placement cost vectors.

CAPS employs three independent objective functions (min C_cpu, min C_io,
min C_net; paper section 4.2 "Objective functions") and returns a
*pareto-optimal* plan: one whose cost vector is not dominated by any
other feasible plan. During the search, worker threads "cache any
satisfactory plan they identify locally" and the fronts are merged at
the end (section 5.1); :class:`ParetoFront` is that cache.
"""

from __future__ import annotations

from typing import Generic, Iterable, List, Optional, Tuple, TypeVar

from repro.core.cost_model import CostVector

T = TypeVar("T")


class ParetoFront(Generic[T]):
    """An online pareto front of (cost vector, payload) entries.

    Inserting an entry drops it if dominated and evicts entries it
    dominates, so the front stays minimal. The payload is typically a
    :class:`~repro.core.plan.PlacementPlan` (or, inside the search, the
    compact per-operator count encoding of one).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        """``capacity`` bounds the front size; when full, inserting a
        non-dominated entry evicts the entry with the largest scalarised
        cost (keeping the front's best corner intact)."""
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._entries: List[Tuple[CostVector, T]] = []
        self._capacity = capacity

    def would_accept(self, cost: CostVector) -> bool:
        """Whether an entry with this cost would survive insertion.

        Lets callers avoid materialising an expensive payload (a full
        placement plan) for dominated candidates.
        """
        return not any(
            existing.dominates(cost) or existing.as_tuple() == cost.as_tuple()
            for existing, _ in self._entries
        )

    def insert(self, cost: CostVector, payload: T) -> bool:
        """Insert an entry; returns True if it survives on the front."""
        for existing, _ in self._entries:
            if existing.dominates(cost) or existing.as_tuple() == cost.as_tuple():
                return False
        self._entries = [
            (c, p) for c, p in self._entries if not cost.dominates(c)
        ]
        self._entries.append((cost, payload))
        if self._capacity is not None and len(self._entries) > self._capacity:
            worst = max(range(len(self._entries)), key=lambda i: self._entries[i][0].total())
            self._entries.pop(worst)
        return True

    def merge(self, other: "ParetoFront[T]") -> None:
        """Merge another front into this one (thread-result merging)."""
        for cost, payload in other.entries():
            self.insert(cost, payload)

    def entries(self) -> List[Tuple[CostVector, T]]:
        return list(self._entries)

    def best(self, weights=None) -> Optional[Tuple[CostVector, T]]:
        """The front entry with minimal scalarised cost.

        The paper's objective (Eq. 3) asks for a minimum-cost plan; when
        the front has multiple non-dominated corners we scalarise by the
        (optionally weighted) sum of the three normalised dimensions.
        Dimensions the deployment is not performance-sensitive to should
        carry near-zero weight — their imbalance is cosmetic and must
        not trade away balance in a dimension that matters.
        """
        if not self._entries:
            return None
        return min(
            self._entries, key=lambda entry: entry[0].weighted_total(weights)
        )

    def is_empty(self) -> bool:
        return not self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)
