"""Parallel placement search (paper section 5.1).

"CAPS parallelizes the search by leveraging a configurable thread pool.
Each thread is initially assigned to a random partition of the search
space ... Threads cache any satisfactory plan they identify locally.
When the search space has been fully explored, threads merge their
results and return the pareto-optimal solution."

We partition the search space by the first outer layer: the feasible
assignments of the first layer's tasks are enumerated up front by the
sequential DFS itself (in *seed collector* mode, so node and prune
counters for layer 0 accumulate exactly once) and dealt round-robin to
workers. Each worker runs the full DFS beneath its seeds and maintains
a private pareto front; fronts are merged deterministically at the end.

Stats semantics (shared by the thread and process backends, see
:class:`repro.core.search.SearchStats`): for a run that explores its
whole space, merged counters equal the sequential counters exactly —
the seed enumeration accounts the first layer once and each partition
accounts its subtrees. ``max_nodes``/``max_plans``/``timeout_s`` apply
per partition.

First-satisfying mode is deterministic: seeds carry their global
first-layer enumeration index, a shared *beacon* records the lowest
index that produced a plan, and a partition abandons a seed (or its
in-flight subtree) only when the seed's index exceeds the beacon's.
Because the plan under the lowest plan-bearing seed is exactly the one
the sequential DFS would reach first, every backend returns the
identical plan, reported as ``SearchStats.first_seed``.

This module holds the shared machinery (seed enumeration, partitioning,
per-partition execution, deterministic merging) plus the thread-pool
driver. CPython's GIL serialises pure-Python threads, so the thread
backend yields little wall-clock speedup; the process backend in
:mod:`repro.core.parallel_proc` runs the same machinery on a
``multiprocessing`` pool for true multicore scaling.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.observability import clock
from repro.core.cost_model import CostVector
from repro.core.pareto import ParetoFront
from repro.core.plan import PlacementPlan
from repro.core.search import (
    CapsSearch,
    SearchLimits,
    SearchResult,
    SearchStats,
    _StopSearch,
)

#: A first-layer seed: (global enumeration index, per-worker counts).
IndexedSeed = Tuple[int, List[int]]


@dataclass
class SeedEnumeration:
    """The first-layer seeds plus the DFS counters spent finding them."""

    seeds: List[List[int]]
    stats: SearchStats


def enumerate_seeds(search: CapsSearch) -> SeedEnumeration:
    """Enumerate feasible first-layer assignments via the DFS itself.

    Runs the sequential inner search over layer 0 in collector mode:
    the returned seeds appear in exactly the order the sequential DFS
    would descend into them (which makes seed indices a deterministic
    tiebreaker), and the returned stats carry the layer-0 node/prune
    counters so parallel drivers can account them exactly once.
    """
    state = search.make_state(SearchLimits())
    state.seed_collector = []
    try:
        state.descend_layer(0)
    except _StopSearch:  # pragma: no cover - no limits are set
        state.exhausted = False
    return SeedEnumeration(seeds=state.seed_collector, stats=state.stats())


def enumerate_layer_assignments(search: CapsSearch) -> List[List[int]]:
    """All feasible first-layer count vectors, duplicate-eliminated.

    Back-compat wrapper around :func:`enumerate_seeds`, returning the
    vectors only.
    """
    return enumerate_seeds(search).seeds


def partition_seeds(
    seeds: Sequence[List[int]], partitions: int
) -> List[List[IndexedSeed]]:
    """Deal seeds round-robin, preserving their global indices."""
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    dealt: List[List[IndexedSeed]] = [[] for _ in range(partitions)]
    for index, seed in enumerate(seeds):
        dealt[index % partitions].append((index, list(seed)))
    return [p for p in dealt if p]


class SeedBeacon:
    """Thread-shared record of the lowest seed index that found a plan."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._best: Optional[int] = None

    def report(self, seed_index: int) -> None:
        with self._lock:
            if self._best is None or seed_index < self._best:
                self._best = seed_index

    def best(self) -> Optional[int]:
        return self._best


class _SeedCancel:
    """stop_event adapter: cancel a state stuck above the beacon's best.

    A partition deep inside seed ``i`` should keep searching while any
    lower-indexed seed might still produce the deterministic winner, and
    abandon its subtree as soon as a strictly lower seed has one.
    """

    def __init__(self, beacon, state) -> None:
        self.beacon = beacon
        self.state = state

    def is_set(self) -> bool:
        best = self.beacon.best()
        if best is None:
            return False
        seed = self.state._seed_index
        return seed is not None and best < seed


@dataclass
class PartitionResult:
    """What one partition worker reports back to the driver."""

    stats: SearchStats
    front: ParetoFront
    first_plan: Optional[Tuple[PlacementPlan, CostVector]] = None
    first_seed: Optional[int] = None
    all_plans: List[Tuple[CostVector, PlacementPlan]] = field(default_factory=list)


def run_seed_partition(
    search: CapsSearch,
    limits: SearchLimits,
    indexed_seeds: Sequence[IndexedSeed],
    beacon=None,
    stop_event=None,
) -> PartitionResult:
    """Run the DFS beneath one partition's seeds on a private state.

    The shared core of both parallel backends: the thread driver calls
    it directly, the process driver calls it inside pool workers. When
    ``beacon`` is given (first-satisfying mode) the partition skips
    seeds whose index exceeds the beacon's best and reports its own
    find; ``stop_event`` is any extra ``is_set()`` cancellation source.
    """
    state = search.make_state(limits)
    if beacon is not None:
        state.stop_event = _SeedCancel(beacon, state)
    elif stop_event is not None:
        state.stop_event = stop_event
    try:
        for index, seed in indexed_seeds:
            if beacon is not None:
                best = beacon.best()
                if best is not None and best < index:
                    break
            state.run_seed(index, seed)
    except _StopSearch:
        state.exhausted = False
    if state.first_plan is not None and beacon is not None:
        beacon.report(state.first_seed)
    return PartitionResult(
        stats=state.stats(),
        front=state.front,
        first_plan=state.first_plan,
        first_seed=state.first_seed,
        all_plans=state.all_plans,
    )


def merge_partition_results(
    search: CapsSearch,
    enumeration: SeedEnumeration,
    results: Sequence[PartitionResult],
    duration_s: float,
) -> SearchResult:
    """Deterministically merge partition results into a SearchResult.

    The merged stats are the enumeration's layer-0 counters plus every
    partition's subtree counters; the first-satisfying winner is the
    plan with the lowest ``first_seed`` (the plan the sequential DFS
    would have found), independent of completion order.
    """
    stats = SearchStats(
        nodes=enumeration.stats.nodes,
        pruned_slots=enumeration.stats.pruned_slots,
        pruned_cpu=enumeration.stats.pruned_cpu,
        pruned_io=enumeration.stats.pruned_io,
        pruned_net=enumeration.stats.pruned_net,
        exhausted=enumeration.stats.exhausted,
        layer_completions=enumeration.stats.layer_completions,
        layer_net_prunes=enumeration.stats.layer_net_prunes,
    )
    front: ParetoFront = ParetoFront(capacity=search.pareto_capacity)
    all_plans: List[Tuple[CostVector, PlacementPlan]] = []
    first_hit: Optional[Tuple[PlacementPlan, CostVector]] = None
    first_seed: Optional[int] = None
    for result in results:
        stats.add(result.stats)
        front.merge(result.front)
        all_plans.extend(result.all_plans)
        if result.first_plan is not None and (
            first_seed is None
            or (result.first_seed is not None and result.first_seed < first_seed)
        ):
            first_hit = result.first_plan
            first_seed = result.first_seed
    stats.first_seed = first_seed
    stats.partitions = max(1, len(results))
    stats.duration_s = duration_s

    best_plan: Optional[PlacementPlan] = None
    best_cost: Optional[CostVector] = None
    if first_hit is not None:
        best_plan, best_cost = first_hit
    best_entry = front.best(search.selection_weights)
    if best_entry is not None:
        best_cost, best_plan = best_entry
    if best_plan is None and all_plans:
        best_cost, best_plan = min(
            all_plans,
            key=lambda entry: entry[0].weighted_total(search.selection_weights),
        )
    return SearchResult(
        best_plan=best_plan,
        best_cost=best_cost,
        pareto=front,
        stats=stats,
        all_plans=all_plans,
    )


class ParallelCapsSearch:
    """Thread-pool driver over a :class:`CapsSearch` configuration."""

    def __init__(self, search: CapsSearch, threads: int = 4) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.search = search
        self.threads = threads

    def run(self, limits: Optional[SearchLimits] = None) -> SearchResult:
        limits = limits or SearchLimits()
        started = clock.monotonic()
        if not self.search.layers:
            return self.search.run(limits)
        enumeration = enumerate_seeds(self.search)
        if not enumeration.seeds:
            stats = enumeration.stats
            stats.duration_s = clock.elapsed_since(started)
            return SearchResult(
                best_plan=None,
                best_cost=None,
                pareto=ParetoFront(capacity=self.search.pareto_capacity),
                stats=stats,
            )
        partitions = partition_seeds(enumeration.seeds, self.threads)
        beacon = SeedBeacon() if limits.first_satisfying else None

        with ThreadPoolExecutor(max_workers=len(partitions)) as pool:
            futures = [
                pool.submit(
                    run_seed_partition, self.search, limits, part, beacon
                )
                for part in partitions
            ]
            results = [future.result() for future in futures]

        return merge_partition_results(
            self.search, enumeration, results, clock.elapsed_since(started)
        )
