"""Parallel placement search (paper section 5.1).

"CAPS parallelizes the search by leveraging a configurable thread pool.
Each thread is initially assigned to a random partition of the search
space ... Threads cache any satisfactory plan they identify locally.
When the search space has been fully explored, threads merge their
results and return the pareto-optimal solution."

We partition the search space by the first outer layer: the feasible
assignments of the first operator's tasks are enumerated up front (with
the same duplicate-elimination and load-bound rules as the sequential
search) and dealt round-robin to worker threads. Each thread runs a full
DFS beneath its seeds and maintains a private pareto front; fronts are
merged at the end. For first-satisfying mode, a shared event cancels the
remaining threads once any thread finds a plan.

Note: CPython's GIL serialises pure-Python execution, so wall-clock
speedup is limited; the implementation preserves the paper's structure
(and its work-partitioning semantics) rather than its constants.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.core.cost_model import CostModel, CostVector
from repro.core.pareto import ParetoFront
from repro.core.search import (
    CapsSearch,
    SearchLimits,
    SearchResult,
    SearchStats,
    _EPS,
    _StopSearch,
)


def enumerate_layer_assignments(search: CapsSearch) -> List[List[int]]:
    """All feasible first-layer count vectors, duplicate-eliminated.

    Mirrors the inner-search enumeration rules for layer 0 only: slot
    capacities, non-increasing counts within worker equivalence groups,
    and the cpu/io load bounds.
    """
    layer = search.layers[0]
    bounds = search.bounds
    slots = [search.cost_model.cluster.slots_of(w) for w in search.worker_ids]
    groups = search._spec_group
    vectors: List[List[int]] = []
    counts = [0] * len(slots)

    def cap_from_bound(u: float, bound: float) -> int:
        if u <= 0 or math.isinf(bound):
            return layer.count
        return int(math.floor((bound + _EPS) / u))

    per_worker_cap = min(
        cap_from_bound(layer.u_cpu, bounds["cpu"]),
        cap_from_bound(layer.u_io, bounds["io"]),
    )

    def place(position: int, remaining: int, last_in_group: Dict[int, int]) -> None:
        if position == len(slots):
            if remaining == 0:
                vectors.append(list(counts))
            return
        group = groups[position]
        ub = min(slots[position], remaining, per_worker_cap)
        if group in last_in_group:
            ub = min(ub, last_in_group[group])
        for c in range(0, ub + 1):
            absorb = 0
            for later in range(position + 1, len(slots)):
                cap = min(slots[later], per_worker_cap)
                later_group = groups[later]
                if later_group == group:
                    cap = min(cap, c)
                elif later_group in last_in_group:
                    cap = min(cap, last_in_group[later_group])
                absorb += cap
            if c + absorb < remaining:
                continue
            counts[position] = c
            prev = last_in_group.get(group)
            last_in_group[group] = c
            place(position + 1, remaining - c, last_in_group)
            if prev is None:
                del last_in_group[group]
            else:
                last_in_group[group] = prev
            counts[position] = 0

    place(0, layer.count, {})
    return vectors


class ParallelCapsSearch:
    """Thread-pool driver over a :class:`CapsSearch` configuration."""

    def __init__(self, search: CapsSearch, threads: int = 4) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.search = search
        self.threads = threads

    def run(self, limits: Optional[SearchLimits] = None) -> SearchResult:
        limits = limits or SearchLimits()
        started = time.monotonic()
        seeds = enumerate_layer_assignments(self.search)
        if not seeds:
            return SearchResult(
                best_plan=None,
                best_cost=None,
                pareto=ParetoFront(),
                stats=SearchStats(duration_s=time.monotonic() - started),
            )
        partitions: List[List[List[int]]] = [[] for _ in range(self.threads)]
        for i, seed in enumerate(seeds):
            partitions[i % self.threads].append(seed)
        partitions = [p for p in partitions if p]

        stop_event = threading.Event()
        results: List[Tuple[ParetoFront, SearchStats, Optional[Tuple]]] = []

        def worker(my_seeds: List[List[int]]):
            state = self.search.make_state(limits)
            state.stop_event = stop_event
            layer = self.search.layers[0]
            first: Optional[Tuple] = None
            try:
                for seed in my_seeds:
                    # Apply layer-0 loads, then let the DFS continue below.
                    for w, c in enumerate(seed):
                        state.free[w] -= c
                        state.load_cpu[w] += c * layer.u_cpu
                        state.load_io[w] += c * layer.u_io
                    try:
                        state._on_layer_complete(0, layer, seed)
                    finally:
                        for w, c in enumerate(seed):
                            state.free[w] += c
                            state.load_cpu[w] -= c * layer.u_cpu
                            state.load_io[w] -= c * layer.u_io
            except _StopSearch:
                state.stats.exhausted = False
            if state.first_plan is not None:
                first = state.first_plan
                stop_event.set()
            results.append((state.front, state.stats, first))

        with ThreadPoolExecutor(max_workers=len(partitions)) as pool:
            futures = [pool.submit(worker, part) for part in partitions]
            for future in futures:
                future.result()

        merged_front: ParetoFront = ParetoFront(capacity=self.search.pareto_capacity)
        merged_stats = SearchStats()
        first_hit: Optional[Tuple] = None
        for front, stats, first in results:
            merged_front.merge(front)
            merged_stats.nodes += stats.nodes
            merged_stats.plans_found += stats.plans_found
            merged_stats.pruned_slots += stats.pruned_slots
            merged_stats.pruned_cpu += stats.pruned_cpu
            merged_stats.pruned_io += stats.pruned_io
            merged_stats.pruned_net += stats.pruned_net
            merged_stats.exhausted = merged_stats.exhausted and stats.exhausted
            if first is not None and first_hit is None:
                first_hit = first
        merged_stats.duration_s = time.monotonic() - started

        best_plan = best_cost = None
        if first_hit is not None:
            best_plan, best_cost = first_hit
        best_entry = merged_front.best(self.search.selection_weights)
        if best_entry is not None:
            best_cost, best_plan = best_entry
        return SearchResult(
            best_plan=best_plan,
            best_cost=best_cost,
            pareto=merged_front,
            stats=merged_stats,
        )
