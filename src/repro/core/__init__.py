"""CAPS: Contention-Aware Placement Search (the paper's contribution).

- :mod:`repro.core.plan` -- placement plans (task -> worker mappings)
  and the feasibility constraints of paper Eq. 1-2.
- :mod:`repro.core.cost_model` -- the contention cost model of paper
  section 4.2 (Eq. 4-8): compute, state-access, and network cost.
- :mod:`repro.core.search` -- the outer/inner DFS plan enumeration with
  duplicate elimination (section 4.3) and threshold pruning (4.4.1).
- :mod:`repro.core.reorder` -- search-tree exploration reordering (4.4.2).
- :mod:`repro.core.pareto` -- pareto-front bookkeeping over cost vectors.
- :mod:`repro.core.autotune` -- two-phase threshold auto-tuning (5.2).
- :mod:`repro.core.parallel` -- thread-pool parallel search (5.1).
- :mod:`repro.core.parallel_proc` -- multicore process-pool search.
- :mod:`repro.core.search_reference` -- frozen pre-optimisation DFS
  (equivalence baseline for tests and benchmarks).
- :mod:`repro.core.greedy` -- LPT-style warm start seeding thresholds.
- :mod:`repro.core.skew` -- skew-aware placement groups (5.2).
"""

from repro.core.plan import PlacementPlan, PlanValidationError
from repro.core.cost_model import CostModel, CostVector, TaskCosts
from repro.core.search import CapsSearch, SearchLimits, SearchResult, SearchStats
from repro.core.pareto import ParetoFront
from repro.core.autotune import AutoTuneResult, ThresholdAutoTuner
from repro.core.greedy import greedy_balanced_plan, greedy_threshold_seed
from repro.core.reorder import exploration_order
from repro.core.skew import bucket_shares, skewed_task_costs, zipf_shares
from repro.core.parallel import ParallelCapsSearch
from repro.core.parallel_proc import (
    SEARCH_BACKENDS,
    ProcessCapsSearch,
    run_search,
)

__all__ = [
    "PlacementPlan",
    "PlanValidationError",
    "CostModel",
    "CostVector",
    "TaskCosts",
    "CapsSearch",
    "SearchLimits",
    "SearchResult",
    "SearchStats",
    "ParetoFront",
    "ThresholdAutoTuner",
    "AutoTuneResult",
    "exploration_order",
    "greedy_balanced_plan",
    "greedy_threshold_seed",
    "ParallelCapsSearch",
    "ProcessCapsSearch",
    "SEARCH_BACKENDS",
    "run_search",
    "zipf_shares",
    "bucket_shares",
    "skewed_task_costs",
]
