"""Process-based parallel placement search (true multicore CAPS).

The paper's CAPS runs its search on a 20-thread Java pool; CPython
threads serialise on the GIL, so the thread driver in
:mod:`repro.core.parallel` preserves the paper's structure but not its
speedup. This module runs the *same* partitioned search — identical
seed enumeration, per-partition DFS, stats semantics, and deterministic
merging — on a ``multiprocessing`` pool of real OS processes.

Mechanics:

- the driver enumerates first-layer seeds once (accounting their DFS
  counters exactly once) and deals them round-robin to partitions, as
  the thread driver does;
- each pool worker rebuilds the :class:`CapsSearch` from a picklable
  :class:`SearchSpec` (sent once per process via the pool initializer)
  and runs :func:`repro.core.parallel.run_seed_partition` unchanged;
- first-satisfying mode shares a lowest-winning-seed *beacon* through a
  ``multiprocessing.Value``, giving the same deterministic
  lowest-seed-wins plan selection as the thread backend;
- partition results (stats, pareto front, plans) pickle back to the
  driver, which merges them with the shared deterministic merge.

With ``jobs=1`` (or a single non-empty partition) the driver runs the
partition inline — no pool, no pickling — with identical results.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability import MetricRegistry, clock
from repro.core.cost_model import CostModel, CostVector
from repro.core.pareto import ParetoFront
from repro.core.parallel import (
    IndexedSeed,
    ParallelCapsSearch,
    PartitionResult,
    SeedBeacon,
    enumerate_seeds,
    merge_partition_results,
    partition_seeds,
    run_seed_partition,
)
from repro.core.search import CapsSearch, OperatorKey, SearchLimits, SearchResult


#: Recognised search backend names (see :func:`run_search`).
SEARCH_BACKENDS = ("sequential", "thread", "process")


def run_search(
    search: CapsSearch,
    limits: Optional[SearchLimits] = None,
    backend: str = "sequential",
    jobs: Optional[int] = None,
    registry: Optional[MetricRegistry] = None,
) -> SearchResult:
    """Run a configured search on the named backend.

    The single dispatch point used by :class:`CapsStrategy`, the
    controller, and the CLI: ``sequential`` runs the in-process DFS,
    ``thread`` the GIL-bound thread pool (paper structure), ``process``
    the multicore pool. ``jobs`` is the worker count for the parallel
    backends (default: one per core). ``registry`` (process backend
    only) accumulates the ``search_backend_fallback_total`` counter when
    a broken pool degrades the search to sequential.
    """
    if backend == "sequential":
        return search.run(limits)
    if backend == "thread":
        return ParallelCapsSearch(search, threads=jobs or default_jobs()).run(limits)
    if backend == "process":
        return ProcessCapsSearch(search, jobs=jobs, registry=registry).run(limits)
    raise ValueError(
        f"unknown search backend {backend!r}; expected one of {SEARCH_BACKENDS}"
    )


@dataclass(frozen=True)
class SearchSpec:
    """Everything needed to rebuild a :class:`CapsSearch` in a child.

    The exploration order is captured explicitly (not re-derived) so
    every process builds byte-for-byte the same layer sequence, keeping
    seed indices and duplicate-elimination decisions aligned across the
    pool.
    """

    cost_model: CostModel
    thresholds: CostVector
    order: Tuple[OperatorKey, ...]
    collect_pareto: bool
    pareto_capacity: int
    collect_all: bool
    selection_weights: Optional[Dict[str, float]]

    @classmethod
    def from_search(cls, search: CapsSearch) -> "SearchSpec":
        return cls(
            cost_model=search.cost_model,
            thresholds=search.thresholds,
            order=tuple(search._order),
            collect_pareto=search.collect_pareto,
            pareto_capacity=search.pareto_capacity,
            collect_all=search.collect_all,
            selection_weights=(
                dict(search.selection_weights)
                if search.selection_weights
                else None
            ),
        )

    def build(self) -> CapsSearch:
        return CapsSearch(
            self.cost_model,
            thresholds=self.thresholds,
            order=list(self.order),
            collect_pareto=self.collect_pareto,
            pareto_capacity=self.pareto_capacity,
            collect_all=self.collect_all,
            selection_weights=self.selection_weights,
        )


class _ProcessBeacon:
    """Cross-process lowest-winning-seed record (SeedBeacon protocol).

    Backed by a shared ``multiprocessing.Value`` holding -1 for "no plan
    yet". Reads are lock-free hints (stale reads only delay
    cancellation, never change the deterministic merge); writes take the
    value's lock to keep the minimum consistent.
    """

    def __init__(self, value) -> None:
        self._value = value

    def report(self, seed_index: int) -> None:
        with self._value.get_lock():
            if self._value.value < 0 or seed_index < self._value.value:
                self._value.value = seed_index

    def best(self) -> Optional[int]:
        raw = self._value.value
        return None if raw < 0 else raw


# Per-process pool worker state, installed by _init_worker. The
# initializer runs before any task in each pool process, but executors
# may one day drive it from threads — the lock makes the install safe
# either way.
_WORKER_STATE_LOCK = threading.Lock()
_WORKER_SEARCH: Optional[CapsSearch] = None
_WORKER_BEACON: Optional[_ProcessBeacon] = None


def _init_worker(spec: SearchSpec, beacon_value) -> None:
    global _WORKER_SEARCH, _WORKER_BEACON
    with _WORKER_STATE_LOCK:
        _WORKER_SEARCH = spec.build()
        _WORKER_BEACON = (
            _ProcessBeacon(beacon_value) if beacon_value is not None else None
        )


def _run_partition(
    task: Tuple[SearchLimits, List[IndexedSeed]]
) -> PartitionResult:
    limits, indexed_seeds = task
    assert _WORKER_SEARCH is not None, "pool initializer did not run"
    return run_seed_partition(
        _WORKER_SEARCH, limits, indexed_seeds, beacon=_WORKER_BEACON
    )


def default_jobs() -> int:
    """Default process count: one per available core."""
    return max(1, os.cpu_count() or 1)


class ProcessCapsSearch:
    """Multiprocessing driver over a :class:`CapsSearch` configuration.

    Args:
        search: The configured search to parallelise.
        jobs: Number of worker processes (default: one per core).
        start_method: ``multiprocessing`` start method; ``fork`` (when
            available) avoids re-importing the world in each child.
        registry: Optional metric registry; counts pool-breakage
            fallbacks under ``search_backend_fallback_total``.
    """

    def __init__(
        self,
        search: CapsSearch,
        jobs: Optional[int] = None,
        start_method: Optional[str] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        jobs = default_jobs() if jobs is None else jobs
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.search = search
        self.jobs = jobs
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.registry = registry

    def run(self, limits: Optional[SearchLimits] = None) -> SearchResult:
        limits = limits or SearchLimits()
        started = clock.monotonic()
        if not self.search.layers:
            return self.search.run(limits)
        enumeration = enumerate_seeds(self.search)
        if not enumeration.seeds:
            stats = enumeration.stats
            stats.duration_s = clock.elapsed_since(started)
            return SearchResult(
                best_plan=None,
                best_cost=None,
                pareto=ParetoFront(capacity=self.search.pareto_capacity),
                stats=stats,
            )
        partitions = partition_seeds(enumeration.seeds, self.jobs)
        if len(partitions) == 1:
            results = self._run_inline(limits, partitions)
        else:
            try:
                results = self._run_pool(limits, partitions)
            except BrokenProcessPool:
                # A worker died mid-search (OOM kill, hard crash). The
                # search inputs are deterministic, so rerunning the same
                # partitions inline yields the same merged result the
                # pool would have produced — slower, never wrong.
                warnings.warn(
                    "placement search process pool broke (a worker died "
                    "abruptly); degrading to the sequential in-process "
                    "search",
                    RuntimeWarning,
                    stacklevel=2,
                )
                if self.registry is not None:
                    self.registry.counter(
                        "search_backend_fallback_total",
                        help="Process-pool searches degraded to sequential.",
                    ).inc()
                results = self._run_inline(limits, partitions)
        return merge_partition_results(
            self.search, enumeration, results, clock.elapsed_since(started)
        )

    def _run_inline(
        self,
        limits: SearchLimits,
        partitions: Sequence[List[IndexedSeed]],
    ) -> List[PartitionResult]:
        beacon = SeedBeacon() if limits.first_satisfying else None
        return [
            run_seed_partition(self.search, limits, part, beacon=beacon)
            for part in partitions
        ]

    def _run_pool(
        self,
        limits: SearchLimits,
        partitions: Sequence[List[IndexedSeed]],
    ) -> List[PartitionResult]:
        ctx = mp.get_context(self.start_method)
        beacon_value = (
            ctx.Value("q", -1) if limits.first_satisfying else None
        )
        spec = SearchSpec.from_search(self.search)
        tasks = [(limits, part) for part in partitions]
        # concurrent.futures (unlike mp.Pool) surfaces abrupt worker
        # death as BrokenProcessPool instead of hanging, which is what
        # lets run() degrade to the sequential path.
        with ProcessPoolExecutor(
            max_workers=len(partitions),
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(spec, beacon_value),
        ) as pool:
            return list(pool.map(_run_partition, tasks, chunksize=1))
