"""Search-tree exploration reordering (paper section 4.4.2).

Plans that exceed a threshold should be pruned as close to the root of
the search tree as possible. Tasks of resource-intensive operators
accumulate load fastest, so exploring those operators first makes
violations surface early: "we prioritize operators with higher resource
consumption and explore them at top layers of the tree ... we rank
operators based on their cost values (C_cpu, C_io, C_net) before
initiating the search."

The reordering is a pure heuristic over which the enumeration is
complete either way (the paper proves correctness in its technical
report; our property tests check that the set of discovered plans is
order-invariant).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.cost_model import DIMENSIONS, TaskCosts

OperatorKey = Tuple[str, str]


def operator_intensity(costs: TaskCosts) -> Dict[OperatorKey, float]:
    """Rank score per operator: its worst normalised share of any dimension.

    For each dimension we compute the operator's fraction of the total
    cluster-wide utilisation, then take the max across dimensions. An
    operator that dominates *any* single resource dimension is explored
    early, because it is the one whose co-location pushes a worker over
    that dimension's load bound first.
    """
    scores: Dict[OperatorKey, float] = {}
    for dim in DIMENSIONS:
        totals = costs.operator_totals(dim)
        overall = sum(totals.values())
        if overall <= 0:
            continue
        for key, value in totals.items():
            share = value / overall
            if share > scores.get(key, 0.0):
                scores[key] = share
    for key in costs.physical.operator_keys():
        scores.setdefault(key, 0.0)
    return scores


def exploration_order(
    costs: TaskCosts, reorder: bool = True
) -> List[OperatorKey]:
    """Operator exploration order for the outer search.

    With ``reorder=False``: topological order (the baseline of Table 2's
    "#nodes" row). With ``reorder=True``: descending intensity, ties
    broken by topological position for determinism (Table 2's "#nodes
    w/ reordering" row).
    """
    topo = costs.physical.operator_keys()
    if not reorder:
        return list(topo)
    position = {key: i for i, key in enumerate(topo)}
    scores = operator_intensity(costs)
    return sorted(topo, key=lambda key: (-scores[key], position[key]))
