"""Greedy balanced placement: warm start and threshold seed for CAPS.

A longest-processing-time-style greedy assignment: layers are visited in
the reordered (most intensive first) exploration order, and each task
goes to the worker that minimises the resulting weighted multi-dimension
load. The greedy plan serves three purposes:

1. its cost vector is a *feasible* threshold seed — running the DFS with
   ``alpha = C(greedy)`` prunes everything worse than greedy while
   guaranteeing at least one satisfying plan exists;
2. it is the fallback result when the search budget expires before the
   DFS reaches a better plan (relevant at multi-tenant scale, where the
   paper's 20-thread Java search outruns a Python DFS by orders of
   magnitude);
3. it is the natural ablation baseline for the search benchmarks (how
   much does systematic search add over greedy balance?).

The network dimension is scored by each task's full output rate
``U_net`` — an upper bound of its Eq. 8 contribution (as if every
downstream link were remote) — because exact cross-link counts are
unknown until downstream layers are placed.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.cost_model import CostModel, CostVector, DIMENSIONS
from repro.core.plan import PlacementPlan
from repro.core.reorder import exploration_order


def greedy_balanced_plan(
    cost_model: CostModel,
    weights: Optional[Mapping[str, float]] = None,
) -> PlacementPlan:
    """Greedily balance tasks across workers, heaviest operators first.

    Args:
        cost_model: Binds the physical graph, cluster, and task costs.
        weights: Per-dimension scoring weights; defaults to 1 for every
            dimension whose worst-case co-location could saturate a
            worker and 0.01 for the rest (see
            :meth:`CostModel.insensitive_dimensions`).

    Returns:
        A plan satisfying Eq. 1-2 (slots permitting, which the model
        assumptions guarantee).
    """
    physical = cost_model.physical
    cluster = cost_model.cluster
    costs = cost_model.costs
    if weights is None:
        insensitive = set(cost_model.insensitive_dimensions())
        weights = {d: (0.01 if d in insensitive else 1.0) for d in DIMENSIONS}

    # Normalisers turn absolute loads into cost-like fractions so the
    # dimensions are comparable; fall back to 1 for empty dimensions.
    norm: Dict[str, float] = {}
    for dim in DIMENSIONS:
        span = cost_model.l_max(dim) - (
            cost_model.l_min(dim) if dim != "net" else 0.0
        )
        norm[dim] = span if span > 1e-12 else 1.0

    workers = [w.worker_id for w in cluster.workers]
    free = {w.worker_id: w.slots for w in cluster.workers}
    load: Dict[str, Dict[int, float]] = {
        dim: {w: 0.0 for w in workers} for dim in DIMENSIONS
    }
    assignment: Dict[str, int] = {}

    for key in exploration_order(costs, reorder=True):
        for task in physical.operator_tasks(*key):
            u = {
                "cpu": costs.u_cpu[task.uid],
                "io": costs.u_io[task.uid],
                "net": costs.u_net[task.uid],
            }

            def score(worker_id: int) -> float:
                total = 0.0
                for dim in DIMENSIONS:
                    total += (
                        weights.get(dim, 1.0)
                        * (load[dim][worker_id] + u[dim])
                        / norm[dim]
                    )
                return total

            candidates = [w for w in workers if free[w] > 0]
            if not candidates:
                raise RuntimeError("ran out of slots in greedy placement")
            target = min(candidates, key=lambda w: (score(w), -free[w], w))
            assignment[task.uid] = target
            free[target] -= 1
            for dim in DIMENSIONS:
                load[dim][target] += u[dim]

    plan = PlacementPlan(assignment)
    plan.validate(physical, cluster)
    return plan


def greedy_threshold_seed(
    cost_model: CostModel, margin: float = 0.05
) -> CostVector:
    """A feasible pruning-threshold vector derived from the greedy plan.

    The returned vector is the greedy plan's cost inflated by ``margin``
    (relative) plus a small absolute slack, clamped to [0, 1]. Running
    the search with it is guaranteed to find at least the greedy plan.
    """
    if margin < 0:
        raise ValueError("margin must be non-negative")
    cost = cost_model.cost(greedy_balanced_plan(cost_model))
    return CostVector(
        cpu=min(1.0, cost.cpu * (1.0 + margin) + 0.01),
        io=min(1.0, cost.io * (1.0 + margin) + 0.01),
        net=min(1.0, cost.net * (1.0 + margin) + 0.01),
    )
