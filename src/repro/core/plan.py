"""Task placement plans.

A *task placement plan* is a mapping ``f: V_p -> V_w`` assigning each
task of the physical execution graph to exactly one worker (paper Eq. 1)
such that no worker receives more tasks than it has slots (Eq. 2).

Plans are value objects: hashable via their canonical signature, so that
two plans that differ only by a permutation of interchangeable workers
can be recognised as equivalent (the property the search's duplicate
elimination exploits, section 4.3).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.dataflow.cluster import Cluster
from repro.dataflow.physical import PhysicalGraph, Task


class PlanValidationError(ValueError):
    """Raised when a plan violates the constraints of paper Eq. 1-2."""


class PlacementPlan:
    """An immutable task-to-worker mapping.

    Args:
        assignment: Mapping from task uid to worker id. Every task of the
            physical graph the plan is used with must appear exactly once.
    """

    __slots__ = ("_assignment", "_hash")

    def __init__(self, assignment: Mapping[str, int]) -> None:
        self._assignment: Dict[str, int] = dict(assignment)
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_task_map(cls, mapping: Mapping[Task, int]) -> "PlacementPlan":
        return cls({task.uid: worker for task, worker in mapping.items()})

    @classmethod
    def from_operator_counts(
        cls,
        physical: PhysicalGraph,
        counts: Mapping[Tuple[str, str], Mapping[int, int]],
    ) -> "PlacementPlan":
        """Build a plan from per-operator worker counts.

        ``counts[(job_id, operator)][worker_id]`` gives how many tasks of
        that operator go on that worker. Because tasks of one operator
        are interchangeable (section 4.1 model assumptions), assigning
        them to workers in index order is canonical.
        """
        assignment: Dict[str, int] = {}
        for key in physical.operator_keys():
            tasks = physical.operator_tasks(*key)
            per_worker = counts.get(key, {})
            expanded: List[int] = []
            for worker_id in sorted(per_worker):
                expanded.extend([worker_id] * per_worker[worker_id])
            if len(expanded) != len(tasks):
                raise PlanValidationError(
                    f"operator {key} has {len(tasks)} tasks but counts place "
                    f"{len(expanded)}"
                )
            for task, worker_id in zip(tasks, expanded):
                assignment[task.uid] = worker_id
        return cls(assignment)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def worker_of(self, task: Task) -> int:
        """The worker a task is assigned to (paper: ``f(t)``)."""
        try:
            return self._assignment[task.uid]
        except KeyError:
            raise PlanValidationError(f"task {task.uid!r} is not placed") from None

    def worker_of_uid(self, uid: str) -> int:
        try:
            return self._assignment[uid]
        except KeyError:
            raise PlanValidationError(f"task {uid!r} is not placed") from None

    @property
    def assignment(self) -> Dict[str, int]:
        return dict(self._assignment)

    def tasks_on(self, worker_id: int) -> List[str]:
        """Uids of tasks placed on a worker, sorted for determinism."""
        return sorted(uid for uid, w in self._assignment.items() if w == worker_id)

    def worker_ids(self) -> List[int]:
        """Workers that received at least one task."""
        return sorted(set(self._assignment.values()))

    def slot_usage(self) -> Dict[int, int]:
        """Number of assigned tasks per worker."""
        usage: Dict[int, int] = {}
        for worker in self._assignment.values():
            usage[worker] = usage.get(worker, 0) + 1
        return usage

    def operator_counts(
        self, physical: PhysicalGraph
    ) -> Dict[Tuple[str, str], Dict[int, int]]:
        """Per-operator worker counts (the inverse of from_operator_counts)."""
        counts: Dict[Tuple[str, str], Dict[int, int]] = {}
        for task in physical.tasks:
            key = (task.job_id, task.operator)
            worker = self.worker_of(task)
            counts.setdefault(key, {})
            counts[key][worker] = counts[key].get(worker, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._assignment)

    # ------------------------------------------------------------------
    # Validation (paper Eq. 1-2)
    # ------------------------------------------------------------------
    def validate(self, physical: PhysicalGraph, cluster: Cluster) -> None:
        """Raise :class:`PlanValidationError` unless Eq. 1-2 hold.

        Eq. 1: every task of the physical graph is assigned to exactly
        one worker, and no extraneous tasks are assigned. Eq. 2: per
        worker, assigned tasks do not exceed available slots.
        """
        expected = {task.uid for task in physical.tasks}
        actual = set(self._assignment)
        missing = expected - actual
        if missing:
            raise PlanValidationError(f"unplaced tasks: {sorted(missing)[:5]} ...")
        extra = actual - expected
        if extra:
            raise PlanValidationError(f"unknown tasks placed: {sorted(extra)[:5]} ...")

        known_workers = {w.worker_id for w in cluster.workers}
        for uid, worker_id in self._assignment.items():
            if worker_id not in known_workers:
                raise PlanValidationError(
                    f"task {uid!r} placed on unknown worker {worker_id}"
                )
        for worker_id, used in self.slot_usage().items():
            slots = cluster.slots_of(worker_id)
            if used > slots:
                raise PlanValidationError(
                    f"worker {worker_id} got {used} tasks but has {slots} slots"
                )

    # ------------------------------------------------------------------
    # Canonical identity
    # ------------------------------------------------------------------
    def canonical_signature(
        self, physical: PhysicalGraph
    ) -> FrozenSet[Tuple[Tuple[Tuple[str, str], int], ...]]:
        """A worker-permutation-invariant identity for the plan.

        Two plans have equal signatures iff one can be obtained from the
        other by (i) permuting tasks of the same operator and (ii)
        permuting entire workers. This is exactly the equivalence class
        the paper's duplicate elimination (section 4.3) collapses, so the
        search's enumeration can be tested against brute force.

        Note the signature intentionally ignores worker identity and is
        therefore only valid for homogeneous clusters.
        """
        per_worker: Dict[int, Dict[Tuple[str, str], int]] = {}
        for task in physical.tasks:
            worker = self.worker_of(task)
            key = (task.job_id, task.operator)
            per_worker.setdefault(worker, {})
            per_worker[worker][key] = per_worker[worker].get(key, 0) + 1
        bags = []
        for counts in per_worker.values():
            bags.append(tuple(sorted(counts.items())))
        return frozenset(_count_multiset(bags))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlacementPlan):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted(self._assignment.items())))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        usage = self.slot_usage()
        return f"PlacementPlan(tasks={len(self)}, workers={len(usage)})"


def _count_multiset(bags: Iterable[Tuple]) -> List[Tuple[Tuple, int]]:
    """Turn a list of hashable bags into (bag, multiplicity) pairs."""
    counts: Dict[Tuple, int] = {}
    for bag in bags:
        counts[bag] = counts.get(bag, 0) + 1
    return sorted(counts.items())
