"""Contention-Aware Placement Search (paper sections 4.3-4.4).

The search space of feasible plans is a tree navigated depth-first:

- the **outer search** explores one operator per layer of the tree, in
  either topological order or the cost-ranked order of
  :mod:`repro.core.reorder`;
- the **inner search** expands each node worker by worker, assigning a
  count of the operator's (identical) tasks to each worker;
- **duplicate elimination** treats workers with identical partial
  assignments as interchangeable: within each equivalence group, task
  counts are forced to be non-increasing, so each equivalence class of
  plans is enumerated exactly once (paper Figure 4c);
- **threshold pruning** (section 4.4.1) cuts a branch as soon as any
  worker's accumulated load exceeds the Eq. 10 bound
  ``L_min + alpha (L_max - L_min)`` in any dimension, which is safe
  because per-worker loads grow monotonically down the tree.

Network loads are resolved incrementally: a physical edge contributes to
worker loads at the layer where its *second* endpoint operator is
placed, at which point the number of cross-worker links is known. The
resolved load is a monotone lower bound of the final network load, so
pruning on it is safe.

Skew extension (paper section 5.2 "Addressing data skew"): tasks of one
operator with *different* utilisations (e.g. produced by a skew-aware
partitioner) are automatically split into separate *placement groups*,
each explored as its own outer layer.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.cost_model import CostModel, CostVector, DIMENSIONS
from repro.core.pareto import ParetoFront
from repro.core.plan import PlacementPlan
from repro.core.reorder import exploration_order

OperatorKey = Tuple[str, str]

_EPS = 1e-9
_DEADLINE_CHECK_INTERVAL = 4096


@dataclass
class SearchLimits:
    """Resource limits for one search invocation.

    Attributes:
        max_nodes: Stop after expanding this many inner-search nodes.
        max_plans: Stop after discovering this many satisfying plans.
        timeout_s: Wall-clock budget; the search returns its best-so-far.
        first_satisfying: Return as soon as one satisfying plan is found
            (the mode timed by Figure 10a).
    """

    max_nodes: Optional[int] = None
    max_plans: Optional[int] = None
    timeout_s: Optional[float] = None
    first_satisfying: bool = False


@dataclass
class SearchStats:
    """Counters describing one search run (the quantities of Table 2)."""

    nodes: int = 0
    plans_found: int = 0
    pruned_slots: int = 0
    pruned_cpu: int = 0
    pruned_io: int = 0
    pruned_net: int = 0
    duration_s: float = 0.0
    exhausted: bool = True

    @property
    def pruned_total(self) -> int:
        return self.pruned_slots + self.pruned_cpu + self.pruned_io + self.pruned_net


@dataclass
class SearchResult:
    """Outcome of a search: the chosen plan, its cost, and diagnostics."""

    best_plan: Optional[PlacementPlan]
    best_cost: Optional[CostVector]
    pareto: ParetoFront
    stats: SearchStats
    #: Every satisfying plan with its cost, populated only when the
    #: search ran with ``collect_all=True`` (exhaustive studies).
    all_plans: List[Tuple[CostVector, PlacementPlan]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.best_plan is not None


@dataclass
class _Layer:
    """One outer-search layer: a group of identical tasks to place."""

    key: OperatorKey
    task_uids: List[str]
    u_cpu: float
    u_io: float
    u_net: float
    d_total: int  # |D(t)| of each task in this layer
    # Net-resolution entries: edges whose other endpoint layer is already
    # placed when this layer completes. Each entry is
    # (other_layer_index, direction, forward) where direction is "out" if
    # this layer's tasks are the emitters.
    resolutions: List[Tuple[int, str, bool]] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.task_uids)


class _StopSearch(Exception):
    """Internal control-flow signal: a limit fired, unwind the DFS."""


def _as_cost_vector(
    thresholds: Union[CostVector, Mapping[str, float], None]
) -> CostVector:
    if thresholds is None:
        return CostVector.unbounded()
    if isinstance(thresholds, CostVector):
        return thresholds
    return CostVector(
        cpu=float(thresholds.get("cpu", math.inf)),
        io=float(thresholds.get("io", math.inf)),
        net=float(thresholds.get("net", math.inf)),
    )


class CapsSearch:
    """A configured CAPS search over one (physical graph, cluster) pair.

    Args:
        cost_model: The cost model binding graph, cluster, and task costs.
        thresholds: The pruning factor vector (paper Eq. 9). Missing or
            infinite entries disable pruning for that dimension.
        reorder: Apply exploration reordering (section 4.4.2).
        order: Explicit operator exploration order (overrides reorder).
        collect_pareto: Maintain the satisfying-plan pareto front. Turn
            off for pure counting runs (Table 2) to avoid plan
            construction overhead.
        pareto_capacity: Bound on the retained front size.
    """

    def __init__(
        self,
        cost_model: CostModel,
        thresholds: Union[CostVector, Mapping[str, float], None] = None,
        reorder: bool = True,
        order: Optional[Sequence[OperatorKey]] = None,
        collect_pareto: bool = True,
        pareto_capacity: int = 64,
        collect_all: bool = False,
        selection_weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.cost_model = cost_model
        self.thresholds = _as_cost_vector(thresholds)
        for dim in DIMENSIONS:
            alpha = self.thresholds[dim]
            if alpha < 0:
                raise ValueError(f"threshold alpha_{dim} must be >= 0")
        self.collect_pareto = collect_pareto
        self.pareto_capacity = pareto_capacity
        self.collect_all = collect_all
        #: Per-dimension weights for picking one plan off the pareto
        #: front; insensitive dimensions get near-zero weight (see
        #: CostModel.insensitive_dimensions).
        self.selection_weights = dict(selection_weights) if selection_weights else None

        physical = cost_model.physical
        if order is None:
            order = exploration_order(cost_model.costs, reorder=reorder)
        else:
            expected = set(physical.operator_keys())
            if set(order) != expected or len(order) != len(expected):
                raise ValueError("explicit order must be a permutation of operators")
        self._order: List[OperatorKey] = list(order)
        self._layers: List[_Layer] = self._build_layers()
        # Load bounds carry a relative tolerance: partial loads are sums
        # of floats accumulated in arbitrary order, so an exact-boundary
        # plan (alpha = 1, or L == bound) must not be lost to the last
        # bit of a large-magnitude sum.
        self._bounds: Dict[str, float] = {}
        for dim in DIMENSIONS:
            bound = cost_model.load_bound(dim, self.thresholds[dim])
            if math.isfinite(bound):
                bound += _EPS + 1e-9 * abs(bound)
            self._bounds[dim] = bound

        cluster = cost_model.cluster
        self._worker_ids: List[int] = [w.worker_id for w in cluster.workers]
        self._slots: List[int] = [w.slots for w in cluster.workers]
        self._spec_group: List[int] = self._spec_groups()
        total_tasks = sum(layer.count for layer in self._layers)
        if total_tasks > sum(self._slots):
            raise ValueError(
                f"{total_tasks} tasks exceed the cluster's {sum(self._slots)} slots"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_layers(self) -> List[_Layer]:
        physical = self.cost_model.physical
        costs = self.cost_model.costs
        layers: List[_Layer] = []
        layer_of_operator: Dict[OperatorKey, List[int]] = {}
        for key in self._order:
            tasks = physical.operator_tasks(*key)
            # Split the operator into placement groups of identical tasks
            # (usually a single group; several under data skew).
            groups: Dict[Tuple[float, float, float, int], List[str]] = {}
            for task in tasks:
                sig = (
                    costs.u_cpu[task.uid],
                    costs.u_io[task.uid],
                    costs.u_net[task.uid],
                    physical.downstream_degree(task),
                )
                groups.setdefault(sig, []).append(task.uid)
            layer_of_operator[key] = []
            for sig in sorted(groups):
                u_cpu, u_io, u_net, d_total = sig
                layers.append(
                    _Layer(
                        key=key,
                        task_uids=sorted(groups[sig]),
                        u_cpu=u_cpu,
                        u_io=u_io,
                        u_net=u_net,
                        d_total=d_total,
                    )
                )
                layer_of_operator[key].append(len(layers) - 1)

        # Register net-resolution entries: each physical edge (as an
        # operator pair) resolves at the later-placed layer. An operator
        # pair is a FORWARD edge iff it carries exactly one channel per
        # endpoint task (one-to-one pairing).
        channel_count: Dict[Tuple[OperatorKey, OperatorKey], int] = {}
        for channel in physical.channels:
            src_key = (channel.src.job_id, channel.src.operator)
            dst_key = (channel.dst.job_id, channel.dst.operator)
            pair = (src_key, dst_key)
            channel_count[pair] = channel_count.get(pair, 0) + 1
        seen_edges: Dict[Tuple[OperatorKey, OperatorKey], bool] = {}
        for (src_key, dst_key), n_channels in channel_count.items():
            p_src = len(physical.operator_tasks(*src_key))
            p_dst = len(physical.operator_tasks(*dst_key))
            seen_edges[(src_key, dst_key)] = n_channels == p_src == p_dst
        for (src_key, dst_key), forward in seen_edges.items():
            for src_idx in layer_of_operator[src_key]:
                for dst_idx in layer_of_operator[dst_key]:
                    later = max(src_idx, dst_idx)
                    other = min(src_idx, dst_idx)
                    direction = "out" if later == dst_idx else "in"
                    # direction describes the OTHER layer's role relative
                    # to the later layer: "out" means the earlier layer
                    # emits into the later one.
                    layers[later].resolutions.append((other, direction, forward))
        return layers

    def _spec_groups(self) -> List[int]:
        """Initial equivalence-group id per worker (identical specs)."""
        cluster = self.cost_model.cluster
        spec_ids: Dict[object, int] = {}
        groups: List[int] = []
        for worker in cluster.workers:
            spec_ids.setdefault(worker.spec, len(spec_ids))
            groups.append(spec_ids[worker.spec])
        return groups

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def run(self, limits: Optional[SearchLimits] = None) -> SearchResult:
        """Execute the DFS and return the (pareto-)best satisfying plan."""
        limits = limits or SearchLimits()
        state = _SearchState(self, limits)
        started = time.monotonic()
        try:
            state.descend_layer(0)
        except _StopSearch:
            state.stats.exhausted = False
        state.stats.duration_s = time.monotonic() - started

        best_plan: Optional[PlacementPlan] = None
        best_cost: Optional[CostVector] = None
        if state.first_plan is not None:
            best_plan, best_cost = state.first_plan
        best_entry = state.front.best(self.selection_weights)
        if best_entry is not None:
            best_cost, best_plan = best_entry
        if best_plan is None and state.all_plans:
            best_cost, best_plan = min(
                state.all_plans,
                key=lambda entry: entry[0].weighted_total(self.selection_weights),
            )
        return SearchResult(
            best_plan=best_plan,
            best_cost=best_cost,
            pareto=state.front,
            stats=state.stats,
            all_plans=state.all_plans,
        )

    # Exposed for the parallel driver -----------------------------------
    @property
    def layers(self) -> List[_Layer]:
        return self._layers

    @property
    def bounds(self) -> Dict[str, float]:
        return dict(self._bounds)

    @property
    def worker_ids(self) -> List[int]:
        return list(self._worker_ids)

    def make_state(self, limits: SearchLimits) -> "_SearchState":
        return _SearchState(self, limits)


class _SearchState:
    """Mutable DFS state: per-worker loads, counts, and statistics."""

    def __init__(self, search: CapsSearch, limits: SearchLimits) -> None:
        self.search = search
        self.limits = limits
        self.stats = SearchStats()
        self.front: ParetoFront[PlacementPlan] = ParetoFront(
            capacity=search.pareto_capacity
        )
        self.first_plan: Optional[Tuple[PlacementPlan, CostVector]] = None
        self.all_plans: List[Tuple[CostVector, PlacementPlan]] = []

        worker_count = len(search.worker_ids)
        self.free: List[int] = list(search._slots)
        self.load_cpu: List[float] = [0.0] * worker_count
        self.load_io: List[float] = [0.0] * worker_count
        self.load_net: List[float] = [0.0] * worker_count
        # counts[layer][worker] once a layer is placed
        self.counts: List[Optional[List[int]]] = [None] * len(search.layers)
        # Worker equivalence-group ids, refreshed per layer.
        self.base_groups: List[int] = list(search._spec_group)
        self.histories: List[Tuple[int, ...]] = [() for _ in range(worker_count)]
        self._deadline = (
            time.monotonic() + limits.timeout_s if limits.timeout_s else None
        )
        self._node_tick = 0
        #: Optional cross-thread cancellation flag (set by the parallel
        #: driver when another thread already found a satisfying plan).
        self.stop_event = None

    # ------------------------------------------------------------------
    def _note_node(self) -> None:
        self.stats.nodes += 1
        limits = self.limits
        if limits.max_nodes is not None and self.stats.nodes >= limits.max_nodes:
            raise _StopSearch
        self._node_tick += 1
        if self._node_tick >= _DEADLINE_CHECK_INTERVAL:
            self._node_tick = 0
            if self._deadline is not None and time.monotonic() > self._deadline:
                raise _StopSearch
            if self.stop_event is not None and self.stop_event.is_set():
                raise _StopSearch

    # ------------------------------------------------------------------
    def descend_layer(self, layer_idx: int) -> None:
        if layer_idx == len(self.search.layers):
            self._on_complete_plan()
            return
        layer = self.search.layers[layer_idx]
        # Group ids for this layer: workers are interchangeable iff they
        # share a spec group and an identical assignment history.
        group_ids: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        groups: List[int] = []
        for w, history in enumerate(self.histories):
            key = (self.base_groups[w], history)
            group_ids.setdefault(key, len(group_ids))
            groups.append(group_ids[key])
        counts = [0] * len(self.free)
        last_in_group: Dict[int, int] = {}
        self._place_worker(layer_idx, layer, 0, layer.count, counts, groups, last_in_group)

    def _place_worker(
        self,
        layer_idx: int,
        layer: _Layer,
        position: int,
        remaining: int,
        counts: List[int],
        groups: List[int],
        last_in_group: Dict[int, int],
    ) -> None:
        workers = self.search.worker_ids
        if position == len(workers):
            if remaining == 0:
                self._on_layer_complete(layer_idx, layer, counts)
            return
        free = self.free[position]
        group = groups[position]

        # Upper bound: slots, remaining tasks, duplicate-elimination cap,
        # and the cpu/io load bounds of Eq. 10.
        ub = min(free, remaining)
        if group in last_in_group:
            ub = min(ub, last_in_group[group])
        bounds = self.search._bounds
        if layer.u_cpu > 0 and not math.isinf(bounds["cpu"]):
            headroom = bounds["cpu"] + _EPS - self.load_cpu[position]
            cap = int(math.floor(headroom / layer.u_cpu)) if headroom > 0 else -1
            if cap < ub:
                self.stats.pruned_cpu += 1
                ub = cap
        if layer.u_io > 0 and not math.isinf(bounds["io"]):
            headroom = bounds["io"] + _EPS - self.load_io[position]
            cap = int(math.floor(headroom / layer.u_io)) if headroom > 0 else -1
            if cap < ub:
                self.stats.pruned_io += 1
                ub = cap
        if ub < 0:
            return

        # Lower bound: the workers after this one must be able to absorb
        # the leftover tasks given slot capacities and duplicate caps.
        same_group_after = 0
        absorb_other = 0
        for later in range(position + 1, len(workers)):
            later_group = groups[later]
            if later_group == group:
                same_group_after += 1
            else:
                cap = self.free[later]
                if later_group in last_in_group:
                    cap = min(cap, last_in_group[later_group])
                absorb_other += cap
        lb = 0
        while lb <= ub:
            absorbable = absorb_other + same_group_after * min(self.free[position], lb)
            if lb + absorbable >= remaining:
                break
            lb += 1
        if lb > ub:
            self.stats.pruned_slots += 1
            return

        for c in range(lb, ub + 1):
            self._note_node()
            counts[position] = c
            self.free[position] -= c
            self.load_cpu[position] += c * layer.u_cpu
            self.load_io[position] += c * layer.u_io
            had_last = group in last_in_group
            prev_last = last_in_group.get(group)
            last_in_group[group] = c
            try:
                self._place_worker(
                    layer_idx, layer, position + 1, remaining - c, counts, groups, last_in_group
                )
            finally:
                if had_last:
                    last_in_group[group] = prev_last  # type: ignore[assignment]
                else:
                    del last_in_group[group]
                self.load_cpu[position] -= c * layer.u_cpu
                self.load_io[position] -= c * layer.u_io
                self.free[position] += c
                counts[position] = 0

    # ------------------------------------------------------------------
    def _on_layer_complete(
        self, layer_idx: int, layer: _Layer, counts: List[int]
    ) -> None:
        snapshot = list(counts)
        self.counts[layer_idx] = snapshot
        net_deltas = self._resolve_net(layer_idx, layer, snapshot)
        bound_net = self.search._bounds["net"]
        violated = any(
            self.load_net[w] > bound_net + _EPS for w, _ in net_deltas
        )
        old_histories = self.histories
        if not violated:
            self.histories = [
                history + (snapshot[w],) for w, history in enumerate(old_histories)
            ]
            try:
                self.descend_layer(layer_idx + 1)
            finally:
                self.histories = old_histories
        else:
            self.stats.pruned_net += 1
        for w, delta in net_deltas:
            self.load_net[w] -= delta
        self.counts[layer_idx] = None

    def _resolve_net(
        self, layer_idx: int, layer: _Layer, counts: List[int]
    ) -> List[Tuple[int, float]]:
        """Add the network load of edges whose second endpoint just placed.

        Returns the applied (worker, delta) list so the caller can undo.
        """
        deltas: List[Tuple[int, float]] = []
        layers = self.search.layers
        for other_idx, direction, forward in layer.resolutions:
            other = layers[other_idx]
            other_counts = self.counts[other_idx]
            if other_counts is None:  # pragma: no cover - defensive
                continue
            if direction == "out":
                emitter, emitter_counts = other, other_counts
                receiver, receiver_counts = layer, counts
            else:
                emitter, emitter_counts = layer, counts
                receiver, receiver_counts = other, other_counts
            if emitter.d_total == 0 or emitter.u_net == 0.0:
                continue
            p_receiver = receiver.count
            for w in range(len(counts)):
                c_e = emitter_counts[w]
                if c_e == 0:
                    continue
                if forward:
                    cross_links = max(0, c_e - receiver_counts[w])
                    load = emitter.u_net * cross_links / emitter.d_total
                else:
                    cross_links = p_receiver - receiver_counts[w]
                    load = (
                        emitter.u_net * c_e * cross_links / emitter.d_total
                    )
                if load > 0.0:
                    self.load_net[w] += load
                    deltas.append((w, load))
        return deltas

    # ------------------------------------------------------------------
    def _on_complete_plan(self) -> None:
        self.stats.plans_found += 1
        cost = self.search.cost_model.cost_from_loads(
            {
                "cpu": max(self.load_cpu),
                "io": max(self.load_io),
                "net": max(self.load_net),
            }
        )
        if self.limits.first_satisfying and self.first_plan is None:
            self.first_plan = (self._build_plan(), cost)
            raise _StopSearch
        if self.search.collect_all:
            self.all_plans.append((cost, self._build_plan()))
        if self.search.collect_pareto and self.front.would_accept(cost):
            self.front.insert(cost, self._build_plan())
        if (
            self.limits.max_plans is not None
            and self.stats.plans_found >= self.limits.max_plans
        ):
            raise _StopSearch

    def _build_plan(self) -> PlacementPlan:
        assignment: Dict[str, int] = {}
        workers = self.search.worker_ids
        for layer_idx, layer in enumerate(self.search.layers):
            counts = self.counts[layer_idx]
            assert counts is not None
            cursor = 0
            for position, count in enumerate(counts):
                for _ in range(count):
                    assignment[layer.task_uids[cursor]] = workers[position]
                    cursor += 1
        return PlacementPlan(assignment)
