"""Contention-Aware Placement Search (paper sections 4.3-4.4).

The search space of feasible plans is a tree navigated depth-first:

- the **outer search** explores one operator per layer of the tree, in
  either topological order or the cost-ranked order of
  :mod:`repro.core.reorder`;
- the **inner search** expands each node worker by worker, assigning a
  count of the operator's (identical) tasks to each worker;
- **duplicate elimination** treats workers with identical partial
  assignments as interchangeable: within each equivalence group, task
  counts are forced to be non-increasing, so each equivalence class of
  plans is enumerated exactly once (paper Figure 4c);
- **threshold pruning** (section 4.4.1) cuts a branch as soon as any
  worker's accumulated load exceeds the Eq. 10 bound
  ``L_min + alpha (L_max - L_min)`` in any dimension, which is safe
  because per-worker loads grow monotonically down the tree.

Network loads are resolved incrementally: a physical edge contributes to
worker loads at the layer where its *second* endpoint operator is
placed, at which point the number of cross-worker links is known. The
resolved load is a monotone lower bound of the final network load, so
pruning on it is safe.

Skew extension (paper section 5.2 "Addressing data skew"): tasks of one
operator with *different* utilisations (e.g. produced by a skew-aware
partitioner) are automatically split into separate *placement groups*,
each explored as its own outer layer.

Performance note (the incremental-bookkeeping layer): the DFS state
maintains per-worker cpu/io/net partial loads *and* worker equivalence
groups as mutating arrays updated in O(1) per place/unplace step.
Equivalence groups are refined incrementally at each layer boundary from
``(previous group, placed count)`` pairs instead of re-hashing the full
per-worker assignment-history tuples, and the per-layer invariants (unit
costs, load limits, activity flags) are precomputed once per search so
the inner loop touches only local scalars. Partial loads are restored by
assignment rather than subtraction, which makes every plan's cost a pure
function of its own placement path: the pre-optimisation code's
undo-by-subtraction leaked last-bit float noise from already-explored
subtrees into later costs, so a plan's reported cost depended on the
exploration history. Path-pure costs are also what make the thread and
process backends bit-identical to the sequential search. The
pre-optimisation implementation is preserved verbatim in
:mod:`repro.core.search_reference`; the equivalence suite and
``benchmarks/bench_perf_search.py`` hold the two to identical node
counts, prune counters, and plan sequences (costs agree to float
round-off).
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.observability import clock
from repro.core.cost_model import CostModel, CostVector, DIMENSIONS
from repro.core.pareto import ParetoFront
from repro.core.plan import PlacementPlan
from repro.core.reorder import exploration_order

OperatorKey = Tuple[str, str]

_EPS = 1e-9
_DEADLINE_CHECK_INTERVAL = 4096


@dataclass
class SearchLimits:
    """Resource limits for one search invocation.

    Attributes:
        max_nodes: Stop after expanding this many inner-search nodes.
        max_plans: Stop after discovering this many satisfying plans.
        timeout_s: Wall-clock budget; the search returns its best-so-far.
        first_satisfying: Return as soon as one satisfying plan is found
            (the mode timed by Figure 10a).
    """

    max_nodes: Optional[int] = None
    max_plans: Optional[int] = None
    timeout_s: Optional[float] = None
    first_satisfying: bool = False


@dataclass
class SearchStats:
    """Counters describing one search run (the quantities of Table 2).

    Counter semantics are identical across the sequential, thread, and
    process backends: each counter counts the same events, and for a run
    that explores its whole space (``exhausted=True``) every backend
    reports the exact same totals (parallel drivers account the
    first-layer seed enumeration once and sum per-partition counters).
    In ``first_satisfying`` mode the *returned plan* and ``first_seed``
    are deterministic and backend-independent, while the work counters
    reflect the work actually performed before cancellation, which for
    parallel backends is timing-dependent. ``max_nodes``/``max_plans``/
    ``timeout_s`` budgets apply globally in sequential mode and
    per-partition in the parallel drivers.
    """

    nodes: int = 0
    plans_found: int = 0
    pruned_slots: int = 0
    pruned_cpu: int = 0
    pruned_io: int = 0
    pruned_net: int = 0
    duration_s: float = 0.0
    exhausted: bool = True
    #: In ``first_satisfying`` mode: index (in first-layer enumeration
    #: order) of the outer-layer seed assignment whose subtree produced
    #: the returned plan. Deterministic across backends; the parallel
    #: drivers derive the winning partition as ``first_seed % partitions``
    #: under their round-robin deal.
    first_seed: Optional[int] = None
    #: Number of parallel search partitions that contributed (1 for a
    #: sequential run).
    partitions: int = 1
    #: Per-depth completion counts: ``layer_completions[d]`` is the
    #: number of net-feasible assignments of outer layer ``d`` the DFS
    #: finished (= expansions into depth ``d+1``, or completed plans for
    #: the last layer). Populated by the incremental search only
    #: (``None`` from the reference implementation); accounted at layer
    #: completion, never per node, so the hot path stays flat. The
    #: tracer turns these into per-depth sub-spans of the search span.
    layer_completions: Optional[Tuple[int, ...]] = None
    #: Per-depth network-threshold prunes (the ``pruned_net`` counter,
    #: attributed to the layer whose resolution violated the bound).
    layer_net_prunes: Optional[Tuple[int, ...]] = None

    @property
    def pruned_total(self) -> int:
        return self.pruned_slots + self.pruned_cpu + self.pruned_io + self.pruned_net

    def add(self, other: "SearchStats") -> None:
        """Accumulate another run's work counters into this one.

        Used by the parallel drivers to merge per-partition stats;
        ``duration_s``, ``first_seed`` and ``partitions`` are driver-owned
        and not touched here.
        """
        self.nodes += other.nodes
        self.plans_found += other.plans_found
        self.pruned_slots += other.pruned_slots
        self.pruned_cpu += other.pruned_cpu
        self.pruned_io += other.pruned_io
        self.pruned_net += other.pruned_net
        self.exhausted = self.exhausted and other.exhausted
        if other.layer_completions is not None:
            if self.layer_completions is None:
                self.layer_completions = other.layer_completions
            else:
                self.layer_completions = tuple(
                    a + b
                    for a, b in zip(self.layer_completions, other.layer_completions)
                )
        if other.layer_net_prunes is not None:
            if self.layer_net_prunes is None:
                self.layer_net_prunes = other.layer_net_prunes
            else:
                self.layer_net_prunes = tuple(
                    a + b
                    for a, b in zip(self.layer_net_prunes, other.layer_net_prunes)
                )


@dataclass
class SearchResult:
    """Outcome of a search: the chosen plan, its cost, and diagnostics."""

    best_plan: Optional[PlacementPlan]
    best_cost: Optional[CostVector]
    pareto: ParetoFront
    stats: SearchStats
    #: Every satisfying plan with its cost, populated only when the
    #: search ran with ``collect_all=True`` (exhaustive studies).
    all_plans: List[Tuple[CostVector, PlacementPlan]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.best_plan is not None


@dataclass
class _Layer:
    """One outer-search layer: a group of identical tasks to place."""

    key: OperatorKey
    task_uids: List[str]
    u_cpu: float
    u_io: float
    u_net: float
    d_total: int  # |D(t)| of each task in this layer
    # Net-resolution entries: edges whose other endpoint layer is already
    # placed when this layer completes. Each entry is
    # (other_layer_index, direction, forward) where direction is "out" if
    # this layer's tasks are the emitters.
    resolutions: List[Tuple[int, str, bool]] = field(default_factory=list)
    # Hoisted per-layer invariants, filled in once by CapsSearch: whether
    # the cpu/io load bound actively caps this layer (non-zero unit cost
    # and a finite bound) and the bound value inclusive of the float
    # tolerance, so the inner loop never re-derives them per node.
    cap_cpu: bool = False
    cap_io: bool = False
    limit_cpu: float = math.inf
    limit_io: float = math.inf

    @property
    def count(self) -> int:
        return len(self.task_uids)


class _StopSearch(Exception):
    """Internal control-flow signal: a limit fired, unwind the DFS."""


def _as_cost_vector(
    thresholds: Union[CostVector, Mapping[str, float], None]
) -> CostVector:
    if thresholds is None:
        return CostVector.unbounded()
    if isinstance(thresholds, CostVector):
        return thresholds
    return CostVector(
        cpu=float(thresholds.get("cpu", math.inf)),
        io=float(thresholds.get("io", math.inf)),
        net=float(thresholds.get("net", math.inf)),
    )


class CapsSearch:
    """A configured CAPS search over one (physical graph, cluster) pair.

    Args:
        cost_model: The cost model binding graph, cluster, and task costs.
        thresholds: The pruning factor vector (paper Eq. 9). Missing or
            infinite entries disable pruning for that dimension.
        reorder: Apply exploration reordering (section 4.4.2).
        order: Explicit operator exploration order (overrides reorder).
        collect_pareto: Maintain the satisfying-plan pareto front. Turn
            off for pure counting runs (Table 2) to avoid plan
            construction overhead.
        pareto_capacity: Bound on the retained front size.
    """

    def __init__(
        self,
        cost_model: CostModel,
        thresholds: Union[CostVector, Mapping[str, float], None] = None,
        reorder: bool = True,
        order: Optional[Sequence[OperatorKey]] = None,
        collect_pareto: bool = True,
        pareto_capacity: int = 64,
        collect_all: bool = False,
        selection_weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.cost_model = cost_model
        self.thresholds = _as_cost_vector(thresholds)
        for dim in DIMENSIONS:
            alpha = self.thresholds[dim]
            if alpha < 0:
                raise ValueError(f"threshold alpha_{dim} must be >= 0")
        self.collect_pareto = collect_pareto
        self.pareto_capacity = pareto_capacity
        self.collect_all = collect_all
        #: Per-dimension weights for picking one plan off the pareto
        #: front; insensitive dimensions get near-zero weight (see
        #: CostModel.insensitive_dimensions).
        self.selection_weights = dict(selection_weights) if selection_weights else None

        physical = cost_model.physical
        if order is None:
            order = exploration_order(cost_model.costs, reorder=reorder)
        else:
            expected = set(physical.operator_keys())
            if set(order) != expected or len(order) != len(expected):
                raise ValueError("explicit order must be a permutation of operators")
        self._order: List[OperatorKey] = list(order)
        self._layers: List[_Layer] = self._build_layers()
        # Load bounds carry a relative tolerance: partial loads are sums
        # of floats accumulated in arbitrary order, so an exact-boundary
        # plan (alpha = 1, or L == bound) must not be lost to the last
        # bit of a large-magnitude sum.
        self._bounds: Dict[str, float] = {}
        for dim in DIMENSIONS:
            bound = cost_model.load_bound(dim, self.thresholds[dim])
            if math.isfinite(bound):
                bound += _EPS + 1e-9 * abs(bound)
            self._bounds[dim] = bound

        cluster = cost_model.cluster
        self._worker_ids: List[int] = [w.worker_id for w in cluster.workers]
        self._slots: List[int] = [w.slots for w in cluster.workers]
        self._spec_group: List[int] = self._spec_groups()
        total_tasks = sum(layer.count for layer in self._layers)
        if total_tasks > sum(self._slots):
            raise ValueError(
                f"{total_tasks} tasks exceed the cluster's {sum(self._slots)} slots"
            )
        # Hoist the per-layer pruning invariants out of the inner loop.
        limit_cpu = self._bounds["cpu"] + _EPS
        limit_io = self._bounds["io"] + _EPS
        self._limit_net: float = self._bounds["net"] + _EPS
        for layer in self._layers:
            layer.cap_cpu = layer.u_cpu > 0 and not math.isinf(limit_cpu)
            layer.cap_io = layer.u_io > 0 and not math.isinf(limit_io)
            layer.limit_cpu = limit_cpu
            layer.limit_io = limit_io

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_layers(self) -> List[_Layer]:
        physical = self.cost_model.physical
        costs = self.cost_model.costs
        layers: List[_Layer] = []
        layer_of_operator: Dict[OperatorKey, List[int]] = {}
        for key in self._order:
            tasks = physical.operator_tasks(*key)
            # Split the operator into placement groups of identical tasks
            # (usually a single group; several under data skew).
            groups: Dict[Tuple[float, float, float, int], List[str]] = {}
            for task in tasks:
                sig = (
                    costs.u_cpu[task.uid],
                    costs.u_io[task.uid],
                    costs.u_net[task.uid],
                    physical.downstream_degree(task),
                )
                groups.setdefault(sig, []).append(task.uid)
            layer_of_operator[key] = []
            for sig in sorted(groups):
                u_cpu, u_io, u_net, d_total = sig
                layers.append(
                    _Layer(
                        key=key,
                        task_uids=sorted(groups[sig]),
                        u_cpu=u_cpu,
                        u_io=u_io,
                        u_net=u_net,
                        d_total=d_total,
                    )
                )
                layer_of_operator[key].append(len(layers) - 1)

        # Register net-resolution entries: each physical edge (as an
        # operator pair) resolves at the later-placed layer. An operator
        # pair is a FORWARD edge iff it carries exactly one channel per
        # endpoint task (one-to-one pairing).
        channel_count: Dict[Tuple[OperatorKey, OperatorKey], int] = {}
        for channel in physical.channels:
            src_key = (channel.src.job_id, channel.src.operator)
            dst_key = (channel.dst.job_id, channel.dst.operator)
            pair = (src_key, dst_key)
            channel_count[pair] = channel_count.get(pair, 0) + 1
        seen_edges: Dict[Tuple[OperatorKey, OperatorKey], bool] = {}
        for (src_key, dst_key), n_channels in channel_count.items():
            p_src = len(physical.operator_tasks(*src_key))
            p_dst = len(physical.operator_tasks(*dst_key))
            seen_edges[(src_key, dst_key)] = n_channels == p_src == p_dst
        for (src_key, dst_key), forward in seen_edges.items():
            for src_idx in layer_of_operator[src_key]:
                for dst_idx in layer_of_operator[dst_key]:
                    later = max(src_idx, dst_idx)
                    other = min(src_idx, dst_idx)
                    direction = "out" if later == dst_idx else "in"
                    # direction describes the OTHER layer's role relative
                    # to the later layer: "out" means the earlier layer
                    # emits into the later one.
                    layers[later].resolutions.append((other, direction, forward))
        return layers

    def _spec_groups(self) -> List[int]:
        """Initial equivalence-group id per worker (identical specs)."""
        cluster = self.cost_model.cluster
        spec_ids: Dict[object, int] = {}
        groups: List[int] = []
        for worker in cluster.workers:
            spec_ids.setdefault(worker.spec, len(spec_ids))
            groups.append(spec_ids[worker.spec])
        return groups

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def run(self, limits: Optional[SearchLimits] = None) -> SearchResult:
        """Execute the DFS and return the (pareto-)best satisfying plan."""
        limits = limits or SearchLimits()
        state = _SearchState(self, limits)
        started = clock.monotonic()
        try:
            state.descend_layer(0)
        except _StopSearch:
            state.exhausted = False
        stats = state.stats()
        stats.duration_s = clock.elapsed_since(started)

        best_plan: Optional[PlacementPlan] = None
        best_cost: Optional[CostVector] = None
        if state.first_plan is not None:
            best_plan, best_cost = state.first_plan
        best_entry = state.front.best(self.selection_weights)
        if best_entry is not None:
            best_cost, best_plan = best_entry
        if best_plan is None and state.all_plans:
            best_cost, best_plan = min(
                state.all_plans,
                key=lambda entry: entry[0].weighted_total(self.selection_weights),
            )
        return SearchResult(
            best_plan=best_plan,
            best_cost=best_cost,
            pareto=state.front,
            stats=stats,
            all_plans=state.all_plans,
        )

    # Exposed for the parallel driver -----------------------------------
    @property
    def layers(self) -> List[_Layer]:
        return self._layers

    @property
    def bounds(self) -> Dict[str, float]:
        return dict(self._bounds)

    @property
    def worker_ids(self) -> List[int]:
        return list(self._worker_ids)

    def make_state(self, limits: SearchLimits) -> "_SearchState":
        return _SearchState(self, limits)


class _SearchState:
    """Mutable DFS state: per-worker loads, groups, counts, statistics.

    This is the optimised (incremental-bookkeeping) implementation:

    - statistics are plain ``int`` attributes (assembled into a
      :class:`SearchStats` by :meth:`stats`) so the hot path pays
      attribute arithmetic, not dataclass field access;
    - worker equivalence groups live in :attr:`groups` and are *refined*
      at each completed layer from ``(previous group, placed count)``
      pairs — an O(workers) step per layer node instead of re-hashing
      full per-worker history tuples at every layer entry;
    - the per-worker lower bound is computed in closed form;
    - per-layer invariants (unit costs, activity flags, tolerant load
      limits) are read off the :class:`_Layer`, precomputed at search
      construction.

    It also carries the seed bookkeeping used by the parallel drivers:
    :attr:`seed_collector` switches the DFS into first-layer enumeration
    mode, :meth:`run_seed` explores the subtree under one pre-enumerated
    first-layer assignment, and :attr:`first_seed` deterministically
    identifies which first-layer assignment produced the plan returned
    in ``first_satisfying`` mode.
    """

    def __init__(self, search: CapsSearch, limits: SearchLimits) -> None:
        self.search = search
        self.limits = limits
        self.front: ParetoFront[PlacementPlan] = ParetoFront(
            capacity=search.pareto_capacity
        )
        self.first_plan: Optional[Tuple[PlacementPlan, CostVector]] = None
        self.all_plans: List[Tuple[CostVector, PlacementPlan]] = []

        # Statistics as plain attributes (see stats()).
        self.nodes = 0
        self.plans_found = 0
        self.pruned_slots = 0
        self.pruned_cpu = 0
        self.pruned_io = 0
        self.pruned_net = 0
        self.exhausted = True
        self.first_seed: Optional[int] = None
        # Per-depth counters, bumped only at layer-completion events
        # (one increment per completed layer assignment, never per
        # node), so enabling them costs the hot loop nothing.
        n_layers = len(search._layers)
        self.layer_completions = [0] * n_layers
        self.layer_net_prunes = [0] * n_layers

        #: Whether plan completions need their cost vector at all; in pure
        #: counting runs (Table 2) the cost is dead and skipped entirely.
        self._need_cost = (
            limits.first_satisfying or search.collect_all or search.collect_pareto
        )
        #: max_nodes as a sentinel so the per-node check is one compare.
        self._max_nodes = (
            limits.max_nodes if limits.max_nodes is not None else sys.maxsize
        )

        worker_count = len(search._worker_ids)
        self.n_workers = worker_count
        self.free: List[int] = list(search._slots)
        self.load_cpu: List[float] = [0.0] * worker_count
        self.load_io: List[float] = [0.0] * worker_count
        self.load_net: List[float] = [0.0] * worker_count
        # counts[layer][worker] once a layer is placed
        self.counts: List[Optional[List[int]]] = [None] * len(search._layers)
        # Current worker equivalence-group ids, refined per placed layer:
        # workers are interchangeable iff they share a spec group and an
        # identical assignment history, and the refinement by
        # (previous group, count) pairs preserves exactly that partition.
        self.groups: List[int] = list(search._spec_group)
        # Preallocated undo scratch for the fused last-layer completion:
        # one (worker, previous net load) pair per resolution edge per
        # worker at most.
        max_res = max((len(l.resolutions) for l in search._layers), default=0)
        self._undo_w: List[int] = [0] * (max_res * worker_count)
        self._undo_delta: List[float] = [0.0] * (max_res * worker_count)
        self._deadline = (
            clock.deadline(limits.timeout_s) if limits.timeout_s else None
        )
        self._node_tick = 0
        #: Optional cross-thread cancellation flag (any object with an
        #: ``is_set()`` method; set by the parallel drivers).
        self.stop_event = None
        #: When not None, the DFS runs in *seed enumeration* mode: every
        #: net-feasible completion of layer 0 is appended here (in DFS
        #: order) instead of being descended into. Node/prune counters
        #: for layer 0 accumulate exactly as in a full run.
        self.seed_collector: Optional[List[List[int]]] = None
        #: Index, in first-layer DFS enumeration order, of the next
        #: net-feasible layer-0 assignment.
        self.layer0_index = 0
        #: Seed index of the layer-0 assignment currently descended into.
        self._seed_index: Optional[int] = None

    def stats(self) -> SearchStats:
        """Assemble the counter attributes into a SearchStats."""
        return SearchStats(
            nodes=self.nodes,
            plans_found=self.plans_found,
            pruned_slots=self.pruned_slots,
            pruned_cpu=self.pruned_cpu,
            pruned_io=self.pruned_io,
            pruned_net=self.pruned_net,
            exhausted=self.exhausted,
            first_seed=self.first_seed,
            layer_completions=tuple(self.layer_completions),
            layer_net_prunes=tuple(self.layer_net_prunes),
        )

    # ------------------------------------------------------------------
    def _check_deadline(self) -> None:
        """Slow-path limit check, every _DEADLINE_CHECK_INTERVAL nodes."""
        self._node_tick = 0
        if self._deadline is not None and clock.monotonic() > self._deadline:
            raise _StopSearch
        if self.stop_event is not None and self.stop_event.is_set():
            raise _StopSearch

    # ------------------------------------------------------------------
    def descend_layer(self, layer_idx: int) -> None:
        if layer_idx == len(self.search._layers):
            self._on_complete_plan()
            return
        layer = self.search._layers[layer_idx]
        counts = [0] * self.n_workers
        self._place_worker(
            layer_idx, layer, 0, layer.count, counts, self.groups, {}
        )

    def _place_worker(
        self,
        layer_idx: int,
        layer: _Layer,
        position: int,
        remaining: int,
        counts: List[int],
        groups: List[int],
        last_in_group: Dict[int, int],
    ) -> None:
        n = self.n_workers
        if position == n:
            if remaining == 0:
                self._on_layer_complete(layer_idx, layer, counts)
            return
        free_arr = self.free
        free = free_arr[position]
        group = groups[position]

        # Upper bound: slots, remaining tasks, duplicate-elimination cap,
        # and the cpu/io load bounds of Eq. 10.
        ub = free if free < remaining else remaining
        prev_last = last_in_group.get(group)
        if prev_last is not None and prev_last < ub:
            ub = prev_last
        u_cpu = layer.u_cpu
        u_io = layer.u_io
        load_cpu = self.load_cpu
        load_io = self.load_io
        base_cpu = load_cpu[position]
        base_io = load_io[position]
        if layer.cap_cpu:
            headroom = layer.limit_cpu - base_cpu
            cap = int(headroom / u_cpu) if headroom > 0 else -1
            if cap < ub:
                self.pruned_cpu += 1
                ub = cap
        if layer.cap_io:
            headroom = layer.limit_io - base_io
            cap = int(headroom / u_io) if headroom > 0 else -1
            if cap < ub:
                self.pruned_io += 1
                ub = cap
        if ub < 0:
            return

        # Lower bound: the workers after this one must be able to absorb
        # the leftover tasks given slot capacities and duplicate caps.
        # Of `remaining` tasks, other-group workers can take at most
        # `absorb_other`; each of the `same_group_after` workers in this
        # worker's group can take at most the count placed here. The
        # smallest feasible count is therefore the closed form
        # ceil(need / (same_group_after + 1)) for need > 0 — identical to
        # scanning candidate counts upward, since absorbable capacity is
        # monotone in the count.
        same_group_after = 0
        absorb_other = 0
        for later in range(position + 1, n):
            later_group = groups[later]
            if later_group == group:
                same_group_after += 1
            else:
                cap = free_arr[later]
                later_last = last_in_group.get(later_group)
                if later_last is not None and later_last < cap:
                    cap = later_last
                absorb_other += cap
        need = remaining - absorb_other
        if need <= 0:
            lb = 0
        else:
            lb = -(-need // (same_group_after + 1))
            if lb > ub:
                self.pruned_slots += 1
                return

        # NB: loads are set to ``base + c*u`` and restored to the saved
        # base by *assignment*, never by subtracting the placed amount.
        # ``(x + c*u) - c*u`` can differ from ``x`` in the last bit, so
        # the reference implementation's undo-by-subtraction leaked
        # last-bit noise from already-explored sibling subtrees into
        # later plan costs, making a plan's reported cost depend on the
        # exploration history (and hence on search partitioning).
        # Assignment restore keeps loads a pure function of the current
        # path, which is what makes the parallel backends bit-identical
        # to the sequential search.
        max_nodes = self._max_nodes
        next_position = position + 1
        if next_position == n:
            # Last worker of the layer: with no workers left to absorb
            # tasks, the closed-form bound gives lb == remaining, so the
            # first count completes the layer and every higher count is a
            # dead-end node (its recursion would return immediately on
            # ``remaining != 0``). Complete once, then batch-account the
            # dead nodes instead of recursing per count.
            self.nodes += 1
            if self.nodes >= max_nodes:
                raise _StopSearch
            self._node_tick += 1
            if self._node_tick >= _DEADLINE_CHECK_INTERVAL:
                self._check_deadline()
            counts[position] = lb
            free_arr[position] = free - lb
            load_cpu[position] = base_cpu + lb * u_cpu
            load_io[position] = base_io + lb * u_io
            last_in_group[group] = lb
            self._on_layer_complete(layer_idx, layer, counts)
            dead = ub - lb
            if dead:
                if self.nodes + dead >= max_nodes:
                    # The reference counts these one at a time and stops
                    # the moment the counter reaches the budget.
                    self.nodes = max_nodes
                    raise _StopSearch
                self.nodes += dead
                self._node_tick += dead
                if self._node_tick >= _DEADLINE_CHECK_INTERVAL:
                    self._check_deadline()
        else:
            for c in range(lb, ub + 1):
                # Inlined node accounting (the former _note_node).
                self.nodes += 1
                if self.nodes >= max_nodes:
                    raise _StopSearch
                self._node_tick += 1
                if self._node_tick >= _DEADLINE_CHECK_INTERVAL:
                    self._check_deadline()
                counts[position] = c
                free_arr[position] = free - c
                load_cpu[position] = base_cpu + c * u_cpu
                load_io[position] = base_io + c * u_io
                last_in_group[group] = c
                self._place_worker(
                    layer_idx, layer, next_position, remaining - c,
                    counts, groups, last_in_group,
                )
        # Restore once after the loop: every iteration overwrites these
        # slots before recursing, so per-iteration undo is wasted work.
        # (On a _StopSearch unwind the state is abandoned, matching the
        # previous implementation's semantics.)
        counts[position] = 0
        free_arr[position] = free
        load_cpu[position] = base_cpu
        load_io[position] = base_io
        if prev_last is not None:
            last_in_group[group] = prev_last
        else:
            del last_in_group[group]

    # ------------------------------------------------------------------
    def _refined_groups(self, snapshot: List[int]) -> List[int]:
        """Split each equivalence group by the counts just assigned."""
        old_groups = self.groups
        group_ids: Dict[Tuple[int, int], int] = {}
        new_groups: List[int] = []
        for w in range(self.n_workers):
            key = (old_groups[w], snapshot[w])
            gid = group_ids.get(key)
            if gid is None:
                gid = len(group_ids)
                group_ids[key] = gid
            new_groups.append(gid)
        return new_groups

    def _on_layer_complete(
        self, layer_idx: int, layer: _Layer, counts: List[int]
    ) -> None:
        # ``counts`` is stable for the lifetime of this frame (deeper
        # layers allocate their own arrays; the caller only mutates it
        # after we return), so it is stored by reference — no snapshot
        # copy. Only the seed collector, which outlives the frame, copies.
        if layer_idx + 1 == len(self.search._layers) and (
            layer_idx != 0 or self.seed_collector is None
        ):
            self._complete_last_layer(layer_idx, layer, counts)
            return
        self.counts[layer_idx] = counts
        net_deltas = self._resolve_net(layer_idx, layer, counts)
        limit_net = self.search._limit_net
        load_net = self.load_net
        violated = False
        for w, _ in net_deltas:
            if load_net[w] > limit_net:
                violated = True
                break
        if violated:
            self.pruned_net += 1
            self.layer_net_prunes[layer_idx] += 1
        elif layer_idx == 0 and self.seed_collector is not None:
            # Seed-enumeration mode: record, don't descend. Layer-0
            # node/prune/completion counters accumulate exactly as in a
            # full run (run_seed skips them, so the parallel merge
            # counts each seed's completion exactly once).
            self.layer_completions[0] += 1
            self.seed_collector.append(list(counts))
            self.layer0_index += 1
        else:
            if layer_idx == 0:
                self._seed_index = self.layer0_index
                self.layer0_index += 1
            self.layer_completions[layer_idx] += 1
            old_groups = self.groups
            self.groups = self._refined_groups(counts)
            try:
                self.descend_layer(layer_idx + 1)
            finally:
                self.groups = old_groups
        for w, previous in reversed(net_deltas):
            load_net[w] = previous
        self.counts[layer_idx] = None

    def _complete_last_layer(
        self, layer_idx: int, layer: _Layer, counts: List[int]
    ) -> None:
        """Fused completion of the final layer (the hottest event).

        Equivalent to :meth:`_on_layer_complete` minus everything the
        plan level never reads: no group refinement, no snapshot copy,
        and net resolution records its (worker, previous value) undo log
        in preallocated scratch arrays instead of building a list per
        completion. Float operations are applied in exactly the same
        order as :meth:`_resolve_net` so loads stay bit-identical.
        """
        self.counts[layer_idx] = counts
        load_net = self.load_net
        undo_w = self._undo_w
        undo_delta = self._undo_delta
        k = 0
        layers = self.search._layers
        counts_arr = self.counts
        for other_idx, direction, forward in layer.resolutions:
            other = layers[other_idx]
            other_counts = counts_arr[other_idx]
            if other_counts is None:  # pragma: no cover - defensive
                continue
            if direction == "out":
                emitter, emitter_counts = other, other_counts
                receiver, receiver_counts = layer, counts
            else:
                emitter, emitter_counts = layer, counts
                receiver, receiver_counts = other, other_counts
            if emitter.d_total == 0 or emitter.u_net == 0.0:
                continue
            p_receiver = receiver.count
            u_net = emitter.u_net
            d_total = emitter.d_total
            for w in range(len(counts)):
                c_e = emitter_counts[w]
                if c_e == 0:
                    continue
                if forward:
                    cross_links = c_e - receiver_counts[w]
                    load = u_net * cross_links / d_total if cross_links > 0 else 0.0
                else:
                    cross_links = p_receiver - receiver_counts[w]
                    load = u_net * c_e * cross_links / d_total
                if load > 0.0:
                    undo_w[k] = w
                    undo_delta[k] = load_net[w]
                    load_net[w] += load
                    k += 1
        limit_net = self.search._limit_net
        violated = False
        for i in range(k):
            if load_net[undo_w[i]] > limit_net:
                violated = True
                break
        if violated:
            self.pruned_net += 1
            self.layer_net_prunes[layer_idx] += 1
        else:
            if layer_idx == 0:
                self._seed_index = self.layer0_index
                self.layer0_index += 1
            self.layer_completions[layer_idx] += 1
            self._on_complete_plan()
        for i in range(k - 1, -1, -1):
            load_net[undo_w[i]] = undo_delta[i]
        self.counts[layer_idx] = None

    # ------------------------------------------------------------------
    def run_seed(self, seed_index: int, seed_counts: Sequence[int]) -> None:
        """Explore the subtree under one pre-enumerated layer-0 assignment.

        Used by the parallel drivers: applies the (net-feasible, already
        accounted) first-layer assignment without re-counting its nodes,
        descends from layer 1, and restores the state so consecutive
        seeds can run on the same instance. ``seed_index`` is the seed's
        global first-layer enumeration index, recorded as
        :attr:`first_seed` if this subtree yields the first satisfying
        plan.
        """
        search = self.search
        if not search._layers:
            raise ValueError("run_seed requires at least one layer")
        layer = search._layers[0]
        free_arr = self.free
        load_cpu = self.load_cpu
        load_io = self.load_io
        for w, c in enumerate(seed_counts):
            if c:
                free_arr[w] -= c
                load_cpu[w] += c * layer.u_cpu
                load_io[w] += c * layer.u_io
        self._seed_index = seed_index
        snapshot = list(seed_counts)
        self.counts[0] = snapshot
        net_deltas = self._resolve_net(0, layer, snapshot)
        old_groups = self.groups
        self.groups = self._refined_groups(snapshot)
        try:
            self.descend_layer(1)
        finally:
            self.groups = old_groups
        for w, previous in reversed(net_deltas):
            self.load_net[w] = previous
        self.counts[0] = None
        for w, c in enumerate(seed_counts):
            if c:
                free_arr[w] += c
                load_cpu[w] -= c * layer.u_cpu
                load_io[w] -= c * layer.u_io

    def _resolve_net(
        self, layer_idx: int, layer: _Layer, counts: List[int]
    ) -> List[Tuple[int, float]]:
        """Add the network load of edges whose second endpoint just placed.

        Returns a (worker, previous value) undo log; callers restore in
        reverse order by assignment so the restored loads are bit-exact
        (undo-by-subtraction would leave last-bit float noise behind and
        make later costs depend on exploration history).
        """
        undo: List[Tuple[int, float]] = []
        layers = self.search._layers
        load_net = self.load_net
        for other_idx, direction, forward in layer.resolutions:
            other = layers[other_idx]
            other_counts = self.counts[other_idx]
            if other_counts is None:  # pragma: no cover - defensive
                continue
            if direction == "out":
                emitter, emitter_counts = other, other_counts
                receiver, receiver_counts = layer, counts
            else:
                emitter, emitter_counts = layer, counts
                receiver, receiver_counts = other, other_counts
            if emitter.d_total == 0 or emitter.u_net == 0.0:
                continue
            p_receiver = receiver.count
            u_net = emitter.u_net
            d_total = emitter.d_total
            for w in range(len(counts)):
                c_e = emitter_counts[w]
                if c_e == 0:
                    continue
                # NB: keep the multiply-then-divide order — the same
                # expression as search_reference, so per-edge loads match
                # the pre-optimisation code bit for bit.
                if forward:
                    cross_links = c_e - receiver_counts[w]
                    load = u_net * cross_links / d_total if cross_links > 0 else 0.0
                else:
                    cross_links = p_receiver - receiver_counts[w]
                    load = u_net * c_e * cross_links / d_total
                if load > 0.0:
                    undo.append((w, load_net[w]))
                    load_net[w] += load
        return undo

    # ------------------------------------------------------------------
    def _on_complete_plan(self) -> None:
        self.plans_found += 1
        if self._need_cost:
            cost = self.search.cost_model.cost_from_loads(
                {
                    "cpu": max(self.load_cpu),
                    "io": max(self.load_io),
                    "net": max(self.load_net),
                }
            )
            if self.limits.first_satisfying and self.first_plan is None:
                self.first_plan = (self._build_plan(), cost)
                self.first_seed = self._seed_index
                raise _StopSearch
            if self.search.collect_all:
                self.all_plans.append((cost, self._build_plan()))
            if self.search.collect_pareto and self.front.would_accept(cost):
                self.front.insert(cost, self._build_plan())
        if (
            self.limits.max_plans is not None
            and self.plans_found >= self.limits.max_plans
        ):
            raise _StopSearch

    def _build_plan(self) -> PlacementPlan:
        assignment: Dict[str, int] = {}
        workers = self.search._worker_ids
        for layer_idx, layer in enumerate(self.search._layers):
            counts = self.counts[layer_idx]
            assert counts is not None
            cursor = 0
            for position, count in enumerate(counts):
                for _ in range(count):
                    assignment[layer.task_uids[cursor]] = workers[position]
                    cursor += 1
        return PlacementPlan(assignment)
