"""Frozen reference implementation of the CAPS DFS (pre-optimisation).

This module preserves the original, straightforward inner-search state
of :mod:`repro.core.search` exactly as it was before the incremental-
bookkeeping optimisation:

- worker equivalence groups are recomputed at every outer layer from the
  full per-worker assignment *history* tuples;
- the per-worker lower bound is found by linearly scanning candidate
  counts;
- load bounds and per-layer unit costs are re-read from dictionaries
  inside the inner loop.

It exists for two reasons. First, the equivalence test-suite pits the
optimised search against this one on seeded instances: both must visit
the same number of nodes, prune the same branches, and discover the
identical plan set. Second, ``benchmarks/bench_perf_search.py`` times
the two implementations side by side to quantify (and regression-guard)
the speedup of the incremental bookkeeping.

Do not "improve" this file; its value is that it does not change.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.observability import clock

from repro.core.cost_model import CostVector
from repro.core.pareto import ParetoFront
from repro.core.plan import PlacementPlan
from repro.core.search import (
    CapsSearch,
    SearchLimits,
    SearchResult,
    SearchStats,
    _DEADLINE_CHECK_INTERVAL,
    _EPS,
    _Layer,
    _StopSearch,
)


class ReferenceCapsSearch(CapsSearch):
    """A :class:`CapsSearch` that runs the pre-optimisation DFS state.

    Construction (layer building, bounds, ordering) is shared with the
    optimised search, so any difference in behaviour is attributable to
    the inner-search bookkeeping alone.
    """

    def run(self, limits: Optional[SearchLimits] = None) -> SearchResult:
        limits = limits or SearchLimits()
        state = _ReferenceSearchState(self, limits)
        started = clock.monotonic()
        try:
            state.descend_layer(0)
        except _StopSearch:
            state.stats.exhausted = False
        state.stats.duration_s = clock.elapsed_since(started)

        best_plan: Optional[PlacementPlan] = None
        best_cost: Optional[CostVector] = None
        if state.first_plan is not None:
            best_plan, best_cost = state.first_plan
        best_entry = state.front.best(self.selection_weights)
        if best_entry is not None:
            best_cost, best_plan = best_entry
        if best_plan is None and state.all_plans:
            best_cost, best_plan = min(
                state.all_plans,
                key=lambda entry: entry[0].weighted_total(self.selection_weights),
            )
        return SearchResult(
            best_plan=best_plan,
            best_cost=best_cost,
            pareto=state.front,
            stats=state.stats,
            all_plans=state.all_plans,
        )


class _ReferenceSearchState:
    """The original mutable DFS state, recomputing group ids per node."""

    def __init__(self, search: CapsSearch, limits: SearchLimits) -> None:
        self.search = search
        self.limits = limits
        self.stats = SearchStats()
        self.front: ParetoFront[PlacementPlan] = ParetoFront(
            capacity=search.pareto_capacity
        )
        self.first_plan: Optional[Tuple[PlacementPlan, CostVector]] = None
        self.all_plans: List[Tuple[CostVector, PlacementPlan]] = []

        worker_count = len(search.worker_ids)
        self.free: List[int] = list(search._slots)
        self.load_cpu: List[float] = [0.0] * worker_count
        self.load_io: List[float] = [0.0] * worker_count
        self.load_net: List[float] = [0.0] * worker_count
        self.counts: List[Optional[List[int]]] = [None] * len(search.layers)
        self.base_groups: List[int] = list(search._spec_group)
        self.histories: List[Tuple[int, ...]] = [() for _ in range(worker_count)]
        self._deadline = (
            clock.deadline(limits.timeout_s) if limits.timeout_s else None
        )
        self._node_tick = 0
        self.stop_event = None

    # ------------------------------------------------------------------
    def _note_node(self) -> None:
        self.stats.nodes += 1
        limits = self.limits
        if limits.max_nodes is not None and self.stats.nodes >= limits.max_nodes:
            raise _StopSearch
        self._node_tick += 1
        if self._node_tick >= _DEADLINE_CHECK_INTERVAL:
            self._node_tick = 0
            if self._deadline is not None and clock.monotonic() > self._deadline:
                raise _StopSearch
            if self.stop_event is not None and self.stop_event.is_set():
                raise _StopSearch

    # ------------------------------------------------------------------
    def descend_layer(self, layer_idx: int) -> None:
        if layer_idx == len(self.search.layers):
            self._on_complete_plan()
            return
        layer = self.search.layers[layer_idx]
        group_ids: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        groups: List[int] = []
        for w, history in enumerate(self.histories):
            key = (self.base_groups[w], history)
            group_ids.setdefault(key, len(group_ids))
            groups.append(group_ids[key])
        counts = [0] * len(self.free)
        last_in_group: Dict[int, int] = {}
        self._place_worker(layer_idx, layer, 0, layer.count, counts, groups, last_in_group)

    def _place_worker(
        self,
        layer_idx: int,
        layer: _Layer,
        position: int,
        remaining: int,
        counts: List[int],
        groups: List[int],
        last_in_group: Dict[int, int],
    ) -> None:
        workers = self.search.worker_ids
        if position == len(workers):
            if remaining == 0:
                self._on_layer_complete(layer_idx, layer, counts)
            return
        free = self.free[position]
        group = groups[position]

        ub = min(free, remaining)
        if group in last_in_group:
            ub = min(ub, last_in_group[group])
        bounds = self.search._bounds
        if layer.u_cpu > 0 and not math.isinf(bounds["cpu"]):
            headroom = bounds["cpu"] + _EPS - self.load_cpu[position]
            cap = int(math.floor(headroom / layer.u_cpu)) if headroom > 0 else -1
            if cap < ub:
                self.stats.pruned_cpu += 1
                ub = cap
        if layer.u_io > 0 and not math.isinf(bounds["io"]):
            headroom = bounds["io"] + _EPS - self.load_io[position]
            cap = int(math.floor(headroom / layer.u_io)) if headroom > 0 else -1
            if cap < ub:
                self.stats.pruned_io += 1
                ub = cap
        if ub < 0:
            return

        same_group_after = 0
        absorb_other = 0
        for later in range(position + 1, len(workers)):
            later_group = groups[later]
            if later_group == group:
                same_group_after += 1
            else:
                cap = self.free[later]
                if later_group in last_in_group:
                    cap = min(cap, last_in_group[later_group])
                absorb_other += cap
        lb = 0
        while lb <= ub:
            absorbable = absorb_other + same_group_after * min(self.free[position], lb)
            if lb + absorbable >= remaining:
                break
            lb += 1
        if lb > ub:
            self.stats.pruned_slots += 1
            return

        for c in range(lb, ub + 1):
            self._note_node()
            counts[position] = c
            self.free[position] -= c
            self.load_cpu[position] += c * layer.u_cpu
            self.load_io[position] += c * layer.u_io
            had_last = group in last_in_group
            prev_last = last_in_group.get(group)
            last_in_group[group] = c
            try:
                self._place_worker(
                    layer_idx, layer, position + 1, remaining - c, counts, groups, last_in_group
                )
            finally:
                if had_last:
                    last_in_group[group] = prev_last  # type: ignore[assignment]
                else:
                    del last_in_group[group]
                self.load_cpu[position] -= c * layer.u_cpu
                self.load_io[position] -= c * layer.u_io
                self.free[position] += c
                counts[position] = 0

    # ------------------------------------------------------------------
    def _on_layer_complete(
        self, layer_idx: int, layer: _Layer, counts: List[int]
    ) -> None:
        snapshot = list(counts)
        self.counts[layer_idx] = snapshot
        net_deltas = self._resolve_net(layer_idx, layer, snapshot)
        bound_net = self.search._bounds["net"]
        violated = any(
            self.load_net[w] > bound_net + _EPS for w, _ in net_deltas
        )
        old_histories = self.histories
        if not violated:
            self.histories = [
                history + (snapshot[w],) for w, history in enumerate(old_histories)
            ]
            try:
                self.descend_layer(layer_idx + 1)
            finally:
                self.histories = old_histories
        else:
            self.stats.pruned_net += 1
        for w, delta in net_deltas:
            self.load_net[w] -= delta
        self.counts[layer_idx] = None

    def _resolve_net(
        self, layer_idx: int, layer: _Layer, counts: List[int]
    ) -> List[Tuple[int, float]]:
        deltas: List[Tuple[int, float]] = []
        layers = self.search.layers
        for other_idx, direction, forward in layer.resolutions:
            other = layers[other_idx]
            other_counts = self.counts[other_idx]
            if other_counts is None:  # pragma: no cover - defensive
                continue
            if direction == "out":
                emitter, emitter_counts = other, other_counts
                receiver, receiver_counts = layer, counts
            else:
                emitter, emitter_counts = layer, counts
                receiver, receiver_counts = other, other_counts
            if emitter.d_total == 0 or emitter.u_net == 0.0:
                continue
            p_receiver = receiver.count
            for w in range(len(counts)):
                c_e = emitter_counts[w]
                if c_e == 0:
                    continue
                if forward:
                    cross_links = max(0, c_e - receiver_counts[w])
                    load = emitter.u_net * cross_links / emitter.d_total
                else:
                    cross_links = p_receiver - receiver_counts[w]
                    load = (
                        emitter.u_net * c_e * cross_links / emitter.d_total
                    )
                if load > 0.0:
                    self.load_net[w] += load
                    deltas.append((w, load))
        return deltas

    # ------------------------------------------------------------------
    def _on_complete_plan(self) -> None:
        self.stats.plans_found += 1
        cost = self.search.cost_model.cost_from_loads(
            {
                "cpu": max(self.load_cpu),
                "io": max(self.load_io),
                "net": max(self.load_net),
            }
        )
        if self.limits.first_satisfying and self.first_plan is None:
            self.first_plan = (self._build_plan(), cost)
            raise _StopSearch
        if self.search.collect_all:
            self.all_plans.append((cost, self._build_plan()))
        if self.search.collect_pareto and self.front.would_accept(cost):
            self.front.insert(cost, self._build_plan())
        if (
            self.limits.max_plans is not None
            and self.stats.plans_found >= self.limits.max_plans
        ):
            raise _StopSearch

    def _build_plan(self) -> PlacementPlan:
        assignment: Dict[str, int] = {}
        workers = self.search.worker_ids
        for layer_idx, layer in enumerate(self.search.layers):
            counts = self.counts[layer_idx]
            assert counts is not None
            cursor = 0
            for position, count in enumerate(counts):
                for _ in range(count):
                    assignment[layer.task_uids[cursor]] = workers[position]
                    cursor += 1
        return PlacementPlan(assignment)
