"""Threshold auto-tuning (paper section 5.2).

Threshold-based pruning requires a factor vector ``alpha``; the ideal is
the *minimum feasible* threshold, which yields the most resource-balanced
plan the deployment admits. The auto-tuner finds it in two phases:

- **Phase 1**: for each dimension in isolation (the other dimensions
  disabled), start from the tightest possible bound (a perfectly
  balanced placement, ``alpha = 0``) and geometrically relax it until a
  satisfying plan exists.
- **Phase 2**: jointly applying the three per-dimension minima is not
  guaranteed feasible, so all three are relaxed *together* by the phase-2
  relaxation factor until a plan satisfying the full vector exists.

Both phases use a configurable relaxation factor (the paper uses 1.1 for
both) and an overall timeout for early exit on infeasible configurations.
Because the result depends only on the query graph and the resources, the
paper precomputes thresholds for candidate scaling scenarios offline;
:func:`precompute_thresholds` implements that."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.observability import clock
from repro.core.cost_model import CostModel, CostVector, DIMENSIONS, TaskCosts
from repro.core.search import CapsSearch, SearchLimits


@dataclass
class AutoTuneResult:
    """Outcome of one auto-tuning run."""

    thresholds: CostVector
    phase1_minima: CostVector
    iterations: int
    duration_s: float
    timed_out: bool

    @property
    def feasible(self) -> bool:
        return all(math.isfinite(self.thresholds[d]) for d in DIMENSIONS)


class ThresholdAutoTuner:
    """Finds the minimum feasible pruning threshold vector.

    Args:
        cost_model: Cost model for the deployment being tuned.
        relaxation_phase1: Multiplicative step for single-dimension
            relaxation (paper default 1.1).
        relaxation_phase2: Multiplicative step for joint relaxation
            (paper default 1.1).
        initial_alpha: First non-zero threshold tried after the exact
            ``alpha = 0`` probe fails.
        timeout_s: Overall wall-clock budget ("users can set a timeout
            value that allows exiting the search early").
        search_timeout_s: Budget for each individual feasibility probe.
        reorder: Forwarded to the underlying searches.
    """

    def __init__(
        self,
        cost_model: CostModel,
        relaxation_phase1: float = 1.1,
        relaxation_phase2: float = 1.1,
        initial_alpha: float = 0.01,
        timeout_s: float = 5.0,
        search_timeout_s: Optional[float] = None,
        probe_max_nodes: Optional[int] = 500_000,
        reorder: bool = True,
        sensitivity_kappa: float = 0.9,
    ) -> None:
        if relaxation_phase1 <= 1.0 or relaxation_phase2 <= 1.0:
            raise ValueError("relaxation factors must be > 1")
        if not 0.0 < initial_alpha <= 1.0:
            raise ValueError("initial_alpha must be in (0, 1]")
        if timeout_s <= 0:
            raise ValueError("timeout must be positive")
        self.cost_model = cost_model
        self.relaxation_phase1 = relaxation_phase1
        self.relaxation_phase2 = relaxation_phase2
        self.initial_alpha = initial_alpha
        self.timeout_s = timeout_s
        self.search_timeout_s = search_timeout_s
        #: Node budget per feasibility probe. An infeasible probe close
        #: to the feasibility boundary can expand an exponential
        #: frontier before proving emptiness; capping it treats
        #: "couldn't find a plan within the budget" as infeasible, which
        #: only errs toward slightly looser (still feasible) thresholds.
        self.probe_max_nodes = probe_max_nodes
        self.reorder = reorder
        #: Dimensions whose worst-case co-located load stays below this
        #: fraction of one worker's capacity are not tuned at all: their
        #: imbalance cannot affect performance (paper Figure 5 shows the
        #: same judgement for Q1-sliding's network dimension), so their
        #: threshold stays fully relaxed instead of fighting the
        #: sensitive dimensions during joint relaxation.
        self.insensitive = set(cost_model.insensitive_dimensions(sensitivity_kappa))

    # ------------------------------------------------------------------
    def _feasible(
        self, thresholds: Mapping[str, float], deadline: float
    ) -> bool:
        """Whether any plan satisfies ``thresholds`` (first-plan probe)."""
        remaining = deadline - clock.monotonic()
        if remaining <= 0:
            raise _TimeoutSignal
        probe_timeout = remaining
        if self.search_timeout_s is not None:
            probe_timeout = min(probe_timeout, self.search_timeout_s)
        search = CapsSearch(
            self.cost_model,
            thresholds=dict(thresholds),
            reorder=self.reorder,
            collect_pareto=False,
        )
        result = search.run(
            SearchLimits(
                first_satisfying=True,
                timeout_s=probe_timeout,
                max_nodes=self.probe_max_nodes,
            )
        )
        return result.found

    def _relax_single(self, dimension: str, deadline: float) -> Tuple[float, int]:
        """Phase 1 for one dimension: minimum feasible alpha, iterations."""
        iterations = 0
        alpha = 0.0
        while True:
            iterations += 1
            thresholds = {d: math.inf for d in DIMENSIONS}
            thresholds[dimension] = alpha
            if self._feasible(thresholds, deadline):
                return alpha, iterations
            if alpha == 0.0:
                alpha = self.initial_alpha
            else:
                alpha *= self.relaxation_phase1
            if alpha > 1.0 + 1e-9:
                # alpha = 1 admits every slot-feasible plan by construction
                # (C_i <= 1 always); reaching this point means slots are
                # infeasible, which the search constructor rejects earlier.
                return 1.0, iterations

    # ------------------------------------------------------------------
    def tune(self) -> AutoTuneResult:
        """Run both phases and return the minimum feasible vector."""
        started = clock.monotonic()
        deadline = started + self.timeout_s
        iterations = 0
        timed_out = False
        minima: Dict[str, float] = {d: 1.0 for d in DIMENSIONS}
        joint: Dict[str, float] = dict(minima)
        try:
            for dim in DIMENSIONS:
                if dim in self.insensitive:
                    minima[dim] = 1.0
                    continue
                minima[dim], used = self._relax_single(dim, deadline)
                iterations += used
            joint = dict(minima)
            # Phase 2: relax every dimension together by an additive step
            # that grows geometrically with the relaxation factor. A
            # purely multiplicative step would poison the vector whenever
            # one dimension's isolated minimum is (near) zero — e.g. the
            # network dimension, whose unconstrained optimum is the
            # degenerate all-on-one-worker plan with C_net = 0: the near-
            # zero entry crawls while the others blow past 1, and the
            # first feasible vector then admits *only* heavily co-located
            # plans. Equal additive steps keep the vector's structure, so
            # the first feasible vector admits the balanced plan.
            step = self.initial_alpha
            while True:
                iterations += 1
                if self._feasible(joint, deadline):
                    break
                for dim in DIMENSIONS:
                    if dim not in self.insensitive:
                        joint[dim] = min(1.0, joint[dim] + step)
                step *= self.relaxation_phase2
                if all(joint[d] >= 1.0 for d in DIMENSIONS):
                    # Fully relaxed: feasible iff slots fit, which holds.
                    break
        except _TimeoutSignal:
            timed_out = True
            joint = {d: max(joint[d], minima[d]) for d in DIMENSIONS}
        return AutoTuneResult(
            thresholds=CostVector(**joint),
            phase1_minima=CostVector(**minima),
            iterations=iterations,
            duration_s=clock.elapsed_since(started),
            timed_out=timed_out,
        )


class _TimeoutSignal(Exception):
    """Raised internally when the overall auto-tune deadline passes."""


def precompute_thresholds(
    scenarios: Iterable[Tuple[str, CostModel]],
    timeout_s: float = 5.0,
    **tuner_kwargs,
) -> Dict[str, AutoTuneResult]:
    """Offline threshold precomputation over candidate scaling scenarios.

    The paper notes (section 5.2) that auto-tuning depends only on the
    query graph and the available resources, so thresholds for plausible
    parallelism combinations can be computed offline and looked up when
    scaling triggers at runtime. ``scenarios`` maps a scenario label
    (e.g. a serialised parallelism vector) to the cost model describing
    it; the result maps each label to its tuned thresholds.
    """
    results: Dict[str, AutoTuneResult] = {}
    for label, cost_model in scenarios:
        tuner = ThresholdAutoTuner(cost_model, timeout_s=timeout_s, **tuner_kwargs)
        results[label] = tuner.tune()
    return results
