"""The CAPS cost model (paper section 4.2, Eq. 4-8).

The model captures cluster resource imbalance as *the difference of the
bottleneck worker's load from the ideal load* along three dimensions:

- **compute cost** ``C_cpu``: Eq. 4-7 over per-task CPU utilisation,
- **state access cost** ``C_io``: the same equations over per-task disk
  read+write rates,
- **network cost** ``C_net``: Eq. 8, where a task's outbound traffic is
  its output rate scaled by the fraction of its downstream physical
  links that cross worker boundaries, with the approximations
  ``L_net_min = 0`` and ``L_net_max = sum of the top-s output rates``.

Each cost lies in [0, 1]: 0 is a perfectly balanced assignment and 1 the
worst case where the ``s`` most intensive tasks share one worker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.dataflow.cluster import Cluster
from repro.dataflow.graph import OperatorSpec
from repro.dataflow.physical import PhysicalGraph, Task
from repro.core.plan import PlacementPlan

DIMENSIONS: Tuple[str, str, str] = ("cpu", "io", "net")


@dataclass(frozen=True)
class UnitCosts:
    """Per-record resource costs of one operator, as profiling produces.

    These are the quantities the CAPSys profiling phase records per
    operator (paper section 5.1): CPU seconds, state-backend bytes, and
    emitted bytes, each normalised per record, plus the observed
    selectivity used to propagate rates downstream.
    """

    #: CPU-seconds per input record.
    cpu_per_record: float
    #: State-backend bytes (read+write) per input record.
    io_bytes_per_record: float
    #: Emitted bytes per *output* record (the profiler divides the
    #: network metric by the observed output rate, paper section 5.1).
    net_bytes_per_record: float
    #: Output records per input record.
    selectivity: float

    def __post_init__(self) -> None:
        for name in ("cpu_per_record", "io_bytes_per_record", "net_bytes_per_record", "selectivity"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{name} must be finite and non-negative")

    @classmethod
    def from_spec(cls, spec: OperatorSpec) -> "UnitCosts":
        """Ground-truth unit costs straight from the operator spec.

        The CPU cost folds in the *average* garbage-collection overhead,
        matching what a profiling phase measuring CPU utilisation over a
        window would observe.
        """
        gc_factor = 1.0
        if spec.gc_spike is not None:
            gc_factor += spec.gc_spike.magnitude * (
                spec.gc_spike.duration_s / spec.gc_spike.period_s
            )
        return cls(
            cpu_per_record=spec.cpu_per_record * gc_factor,
            io_bytes_per_record=spec.io_bytes_per_record,
            net_bytes_per_record=spec.out_record_bytes,
            selectivity=spec.selectivity,
        )


@dataclass(frozen=True)
class CostVector:
    """The cost vector ``C = [C_cpu, C_io, C_net]`` of a placement plan."""

    cpu: float
    io: float
    net: float

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.cpu, self.io, self.net)

    def __getitem__(self, dimension: str) -> float:
        if dimension not in DIMENSIONS:
            raise KeyError(f"unknown dimension {dimension!r}")
        return getattr(self, dimension)

    def dominates(self, other: "CostVector", eps: float = 1e-12) -> bool:
        """Pareto dominance: no worse in all dimensions, better in one."""
        no_worse = all(
            self[d] <= other[d] + eps for d in DIMENSIONS
        )
        strictly_better = any(self[d] < other[d] - eps for d in DIMENSIONS)
        return no_worse and strictly_better

    def within(self, thresholds: "CostVector", eps: float = 1e-9) -> bool:
        """Whether every dimension satisfies Eq. 9 for the given alphas."""
        return all(self[d] <= thresholds[d] + eps for d in DIMENSIONS)

    def total(self) -> float:
        """Scalarisation used to pick one plan from the pareto front."""
        return self.cpu + self.io + self.net

    def weighted_total(self, weights: Optional[Mapping[str, float]] = None) -> float:
        """Weighted scalarisation; dimensions a deployment is not
        sensitive to get (near-)zero weight so their imbalance cannot
        trade away balance in a dimension that matters."""
        if weights is None:
            return self.total()
        return sum(self[d] * weights.get(d, 1.0) for d in DIMENSIONS)

    @classmethod
    def unbounded(cls) -> "CostVector":
        return cls(math.inf, math.inf, math.inf)


def propagate_rates(
    physical: PhysicalGraph,
    source_rates: Mapping[Tuple[str, str], float],
    selectivities: Optional[Mapping[Tuple[str, str], float]] = None,
) -> Dict[str, float]:
    """Steady-state per-task input rates implied by source target rates.

    Rates flow along physical channels: a task's input rate is the sum
    over its in-channels of the upstream task's output rate times the
    channel share; a task's output rate is its input rate times its
    selectivity (a source's "input" rate is its generation rate).

    Args:
        source_rates: target generation rate per (job_id, operator) for
            every source operator; a source's tasks split it evenly.
        selectivities: optional per-operator selectivity override (the
            profiler supplies observed selectivities); defaults to the
            operator specs.

    Returns:
        Mapping from task uid to input rate (records/second).
    """
    in_rate: Dict[str, float] = {}
    out_rate: Dict[str, float] = {}
    for task in physical.tasks:  # tasks are stored in topological order per job
        spec = physical.spec_of(task)
        key = (task.job_id, task.operator)
        if spec.is_source:
            if key not in source_rates:
                raise KeyError(f"no target rate for source operator {key}")
            members = physical.operator_tasks(*key)
            rate = source_rates[key] / len(members)
        else:
            rate = sum(
                out_rate[ch.src.uid] * ch.share for ch in physical.in_channels(task)
            )
        selectivity = (
            selectivities[key]
            if selectivities is not None and key in selectivities
            else spec.selectivity
        )
        in_rate[task.uid] = rate
        out_rate[task.uid] = rate * selectivity
    return in_rate


class TaskCosts:
    """Per-task resource utilisations ``U_cpu``, ``U_io``, ``U_net``.

    ``U_cpu(t)`` is CPU-seconds per second, ``U_io(t)`` state-access
    bytes per second, ``U_net(t)`` output bytes per second (paper
    Table 1). Computed by multiplying each task's steady-state rate with
    the operator's per-record unit costs, exactly as CAPSys does on
    reconfiguration (section 5.1: "multiplying its target rate and its
    corresponding unit cost").
    """

    def __init__(
        self,
        physical: PhysicalGraph,
        u_cpu: Mapping[str, float],
        u_io: Mapping[str, float],
        u_net: Mapping[str, float],
        in_rates: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.physical = physical
        for name, table in (("u_cpu", u_cpu), ("u_io", u_io), ("u_net", u_net)):
            missing = {t.uid for t in physical.tasks} - set(table)
            if missing:
                raise ValueError(f"{name} missing tasks: {sorted(missing)[:3]} ...")
        self.u_cpu = dict(u_cpu)
        self.u_io = dict(u_io)
        self.u_net = dict(u_net)
        self.in_rates = dict(in_rates) if in_rates is not None else {}

    @classmethod
    def from_unit_costs(
        cls,
        physical: PhysicalGraph,
        unit_costs: Mapping[Tuple[str, str], UnitCosts],
        source_rates: Mapping[Tuple[str, str], float],
    ) -> "TaskCosts":
        """Combine profiled unit costs with target rates (section 5.1)."""
        selectivities = {key: uc.selectivity for key, uc in unit_costs.items()}
        rates = propagate_rates(physical, source_rates, selectivities)
        u_cpu: Dict[str, float] = {}
        u_io: Dict[str, float] = {}
        u_net: Dict[str, float] = {}
        for task in physical.tasks:
            key = (task.job_id, task.operator)
            if key not in unit_costs:
                raise KeyError(f"no unit costs for operator {key}")
            uc = unit_costs[key]
            rate = rates[task.uid]
            u_cpu[task.uid] = rate * uc.cpu_per_record
            u_io[task.uid] = rate * uc.io_bytes_per_record
            u_net[task.uid] = rate * uc.selectivity * uc.net_bytes_per_record
        return cls(physical, u_cpu, u_io, u_net, rates)

    @classmethod
    def from_specs(
        cls,
        physical: PhysicalGraph,
        source_rates: Mapping[Tuple[str, str], float],
    ) -> "TaskCosts":
        """Ground-truth costs straight from operator specs (no profiling)."""
        unit_costs: Dict[Tuple[str, str], UnitCosts] = {}
        for key in physical.operator_keys():
            first_task = physical.operator_tasks(*key)[0]
            unit_costs[key] = UnitCosts.from_spec(physical.spec_of(first_task))
        return cls.from_unit_costs(physical, unit_costs, source_rates)

    def of(self, dimension: str) -> Dict[str, float]:
        if dimension == "cpu":
            return self.u_cpu
        if dimension == "io":
            return self.u_io
        if dimension == "net":
            return self.u_net
        raise KeyError(f"unknown dimension {dimension!r}")

    def operator_totals(self, dimension: str) -> Dict[Tuple[str, str], float]:
        """Total utilisation per logical operator, used for reordering."""
        table = self.of(dimension)
        totals: Dict[Tuple[str, str], float] = {}
        for task in self.physical.tasks:
            key = (task.job_id, task.operator)
            totals[key] = totals.get(key, 0.0) + table[task.uid]
        return totals


class CostModel:
    """Evaluates the cost vector of placement plans (Eq. 4-8).

    Precomputes the placement-independent quantities: the ideal loads
    ``L_min`` (Eq. 6), the worst-case loads ``L_max`` over the top-``s``
    tasks (Eq. 7, and the ``T_net`` approximation for the network
    dimension), and the downstream degrees ``|D(t)|`` used by Eq. 8.
    """

    def __init__(
        self, physical: PhysicalGraph, cluster: Cluster, costs: TaskCosts
    ) -> None:
        if costs.physical is not physical:
            # Allow equal-but-distinct graphs as long as the task universe matches.
            if {t.uid for t in costs.physical.tasks} != {t.uid for t in physical.tasks}:
                raise ValueError("TaskCosts were computed for a different graph")
        self.physical = physical
        self.cluster = cluster
        self.costs = costs
        self._slots = max(w.slots for w in cluster.workers)
        self._worker_count = len(cluster.workers)

        self._l_min: Dict[str, float] = {}
        self._l_max: Dict[str, float] = {}
        for dim in ("cpu", "io"):
            table = costs.of(dim)
            total = sum(table.values())
            self._l_min[dim] = total / self._worker_count
            top = sorted(table.values(), reverse=True)[: self._slots]
            self._l_max[dim] = sum(top)
        # Network approximations (section 4.2): L_net_min = 0 (all tasks
        # on one worker, no traffic); L_net_max = co-locating the tasks
        # with the highest output rates, T_net with |T_net| = s.
        net_table = costs.of("net")
        self._l_min["net"] = 0.0
        self._l_max["net"] = sum(sorted(net_table.values(), reverse=True)[: self._slots])

        self._down_degree: Dict[str, int] = {
            t.uid: physical.downstream_degree(t) for t in physical.tasks
        }

    # ------------------------------------------------------------------
    # Placement-independent quantities
    # ------------------------------------------------------------------
    def l_min(self, dimension: str) -> float:
        """The ideal per-worker load ``L_i^min`` (Eq. 6)."""
        return self._l_min[dimension]

    def l_max(self, dimension: str) -> float:
        """The worst-case per-worker load ``L_i^max`` (Eq. 7)."""
        return self._l_max[dimension]

    def load_bound(self, dimension: str, alpha: float) -> float:
        """The pruning bound of Eq. 10: ``L_min + alpha (L_max - L_min)``."""
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if math.isinf(alpha):
            return math.inf
        return self._l_min[dimension] + alpha * (
            self._l_max[dimension] - self._l_min[dimension]
        )

    def dimension_sensitivity(self, dimension: str) -> float:
        """How close the worst-case co-location comes to saturating a worker.

        Ratio of ``L_i^max`` (the load of piling the ``s`` most intensive
        tasks onto one worker) to the smallest per-worker capacity in
        that dimension. Below ~1, even the most imbalanced plan cannot
        contend on this resource, so its *normalised* imbalance cost
        says nothing about performance — the situation the paper
        observes for Q1-sliding's network dimension ("C_net is not a
        dominant performance factor", Figure 5).
        """
        capacities = {
            "cpu": min(w.spec.cpu_capacity for w in self.cluster.workers),
            "io": min(w.spec.disk_bandwidth for w in self.cluster.workers),
            "net": min(w.spec.network_bandwidth for w in self.cluster.workers),
        }
        return self._l_max[dimension] / capacities[dimension]

    def insensitive_dimensions(self, kappa: float = 0.9) -> List[str]:
        """Dimensions whose imbalance cannot affect performance.

        ``kappa`` is the saturation fraction below which a dimension is
        declared insensitive: if even the worst-case co-location
        (``L_i^max``) cannot push a worker past ``kappa`` of its
        capacity, no plan can contend on this resource, so pruning and
        plan selection should ignore it — its normalised cost is noise,
        and weighting it would trade away balance in a dimension that
        actually binds.
        """
        if kappa <= 0:
            raise ValueError("kappa must be positive")
        return [d for d in DIMENSIONS if self.dimension_sensitivity(d) < kappa]

    # ------------------------------------------------------------------
    # Per-plan loads and costs
    # ------------------------------------------------------------------
    def worker_loads(self, plan: PlacementPlan, dimension: str) -> Dict[int, float]:
        """Per-worker load for one dimension under a plan.

        For cpu/io this is the sum of task utilisations on the worker
        (Eq. 5); for net it is Eq. 8's cross-worker-scaled output rates.
        """
        loads: Dict[int, float] = {w.worker_id: 0.0 for w in self.cluster.workers}
        if dimension in ("cpu", "io"):
            table = self.costs.of(dimension)
            for task in self.physical.tasks:
                loads[plan.worker_of(task)] += table[task.uid]
            return loads
        if dimension != "net":
            raise KeyError(f"unknown dimension {dimension!r}")
        net = self.costs.of("net")
        for task in self.physical.tasks:
            degree = self._down_degree[task.uid]
            if degree == 0:
                continue  # sink task: no outbound links
            worker = plan.worker_of(task)
            remote = sum(
                1
                for ch in self.physical.out_channels(task)
                if plan.worker_of(ch.dst) != worker
            )
            loads[worker] += net[task.uid] * (remote / degree)
        return loads

    def load(self, plan: PlacementPlan, dimension: str) -> float:
        """The bottleneck-worker load ``L_i(f)`` (Eq. 5 / Eq. 8)."""
        return max(self.worker_loads(plan, dimension).values())

    def dimension_cost(self, plan: PlacementPlan, dimension: str) -> float:
        """Eq. 4 for one dimension: normalised bottleneck excess load."""
        l_max, l_min = self._l_max[dimension], self._l_min[dimension]
        if math.isclose(l_max, l_min, rel_tol=1e-12, abs_tol=1e-12):
            return 0.0
        return (self.load(plan, dimension) - l_min) / (l_max - l_min)

    def cost(self, plan: PlacementPlan) -> CostVector:
        """The full cost vector ``[C_cpu, C_io, C_net]`` of a plan."""
        return CostVector(
            cpu=self.dimension_cost(plan, "cpu"),
            io=self.dimension_cost(plan, "io"),
            net=self.dimension_cost(plan, "net"),
        )

    def cost_from_loads(self, loads: Mapping[str, float]) -> CostVector:
        """Cost vector from precomputed bottleneck loads (search fast path)."""
        values = {}
        for dim in DIMENSIONS:
            l_max, l_min = self._l_max[dim], self._l_min[dim]
            if math.isclose(l_max, l_min, rel_tol=1e-12, abs_tol=1e-12):
                values[dim] = 0.0
            else:
                values[dim] = (loads[dim] - l_min) / (l_max - l_min)
        return CostVector(**values)
