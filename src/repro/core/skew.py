"""Skew-aware placement groups (paper section 5.2, "Addressing data skew").

CAPS assumes tasks of one operator are identical. Under data skew, a
skew-aware partitioner assigns keys so that tasks of an operator fall
into a small number of *placement groups* with (approximately) equal
resource demand within each group; CAPS then explores each group as its
own outer-search layer — which
:class:`~repro.core.search.CapsSearch` already does automatically for
tasks with distinct utilisations.

This module supplies the inputs: skewed per-task rate splits (Zipf-like
key popularity), the grouping of skewed tasks into demand buckets, and
a :class:`~repro.core.cost_model.TaskCosts` builder that applies a
skewed split to chosen operators instead of the uniform one.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dataflow.physical import PhysicalGraph
from repro.core.cost_model import TaskCosts, UnitCosts, propagate_rates

OperatorKey = Tuple[str, str]


def zipf_shares(n: int, exponent: float = 1.0) -> List[float]:
    """Normalised Zipf(``exponent``) shares over ``n`` tasks.

    ``exponent = 0`` degenerates to a uniform split; larger exponents
    concentrate load on the first tasks. Shares sum to 1.
    """
    if n < 1:
        raise ValueError("need at least one task")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    weights = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def bucket_shares(shares: Sequence[float], groups: int) -> List[float]:
    """Quantise shares into ``groups`` demand levels (placement groups).

    Skew-aware partitioners produce task groups of *equal* demand within
    each group (the paper's premise); quantising a raw skew profile into
    a few levels models that: every share is replaced by the mean of its
    bucket, preserving the total.
    """
    if groups < 1:
        raise ValueError("need at least one group")
    if not shares:
        raise ValueError("need at least one share")
    order = sorted(range(len(shares)), key=lambda i: -shares[i])
    bucketed = [0.0] * len(shares)
    size = -(-len(shares) // groups)  # ceil
    for b in range(0, len(order), size):
        members = order[b : b + size]
        mean = sum(shares[i] for i in members) / len(members)
        for i in members:
            bucketed[i] = mean
    total = sum(bucketed)
    return [b / total for b in bucketed]


def skewed_task_costs(
    physical: PhysicalGraph,
    unit_costs: Mapping[OperatorKey, UnitCosts],
    source_rates: Mapping[OperatorKey, float],
    skewed_operators: Mapping[OperatorKey, Sequence[float]],
) -> TaskCosts:
    """Task costs where chosen operators receive a skewed rate split.

    Args:
        physical: The physical execution graph.
        unit_costs: Profiled per-record costs per operator.
        source_rates: Target rate per source operator.
        skewed_operators: Per-operator share vectors (one entry per task
            of the operator, summing to ~1). Operators absent here keep
            the uniform split.

    Returns:
        A :class:`TaskCosts` whose per-task utilisations reflect the
        skewed input rates. Feeding it to :class:`CapsSearch` makes the
        search treat each distinct-demand bucket as its own placement
        group (an extra outer layer).
    """
    selectivities = {key: uc.selectivity for key, uc in unit_costs.items()}
    uniform = propagate_rates(physical, source_rates, selectivities)

    rates: Dict[str, float] = dict(uniform)
    for key, shares in skewed_operators.items():
        tasks = physical.operator_tasks(*key)
        if len(shares) != len(tasks):
            raise ValueError(
                f"{key}: {len(shares)} shares for {len(tasks)} tasks"
            )
        share_sum = sum(shares)
        if not math.isclose(share_sum, 1.0, rel_tol=1e-6):
            raise ValueError(f"{key}: shares sum to {share_sum}, expected 1")
        operator_rate = sum(uniform[t.uid] for t in tasks)
        for task, share in zip(tasks, shares):
            rates[task.uid] = operator_rate * share

    u_cpu: Dict[str, float] = {}
    u_io: Dict[str, float] = {}
    u_net: Dict[str, float] = {}
    for task in physical.tasks:
        key = (task.job_id, task.operator)
        uc = unit_costs[key]
        rate = rates[task.uid]
        u_cpu[task.uid] = rate * uc.cpu_per_record
        u_io[task.uid] = rate * uc.io_bytes_per_record
        u_net[task.uid] = rate * uc.selectivity * uc.net_bytes_per_record
    return TaskCosts(physical, u_cpu, u_io, u_net, rates)


def placement_groups(
    costs: TaskCosts, operator: OperatorKey
) -> Dict[Tuple[float, float, float], List[str]]:
    """The demand buckets CAPS will explore as separate layers.

    Groups the operator's task uids by their (cpu, io, net) utilisation
    signature — the same criterion :class:`CapsSearch` uses when
    building layers, exposed here for inspection and tests.
    """
    groups: Dict[Tuple[float, float, float], List[str]] = {}
    for task in costs.physical.operator_tasks(*operator):
        signature = (
            costs.u_cpu[task.uid],
            costs.u_io[task.uid],
            costs.u_net[task.uid],
        )
        groups.setdefault(signature, []).append(task.uid)
    return groups
