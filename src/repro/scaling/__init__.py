"""Auto-scaling: the DS2 controller (Kalavri et al., OSDI 2018).

DS2 is the scaling controller CAPSys builds on (paper Figure 6, step 3):
it observes each operator's *true* processing rate — the rate a task
sustains while busy — and computes, in one topological pass, the minimal
parallelism per operator that sustains the target source rates.

The placement-scaling interaction the paper studies (section 6.4) flows
through the true rates: resource contention from a bad placement lowers
measured true rates, inflating DS2's parallelism estimates (overshoot)
and destabilising convergence.
"""

from repro.scaling.ds2 import DS2Controller, ScalingDecision
from repro.scaling.rates import OperatorRates, aggregate_operator_rates

__all__ = [
    "DS2Controller",
    "ScalingDecision",
    "OperatorRates",
    "aggregate_operator_rates",
]
