"""The DS2 scaling model ("three steps is all you need", OSDI 2018).

Given per-operator true processing rates and observed selectivities, DS2
computes target parallelisms in a single topological pass:

1. a source operator's target output rate is its target input rate
   times its selectivity;
2. a non-source operator's target input rate is the sum of its upstream
   operators' target output rates (scaled by how much of each upstream
   stream reaches it);
3. its parallelism is ``ceil(target input rate / true rate per task)``
   and its own target output rate is input times selectivity.

Source parallelism is not scaled (sources are rate generators whose
parallelism the deployment fixes), matching the paper's experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.dataflow.graph import LogicalGraph
from repro.scaling.rates import OperatorRates
from repro.units import Fraction, RecordsPerSecond

OperatorKey = Tuple[str, str]


@dataclass(frozen=True)
class ScalingDecision:
    """Output of one DS2 evaluation for one job."""

    parallelism: Dict[str, int]
    target_input_rates: Dict[str, float]
    changed: bool

    def total_tasks(self) -> int:
        return sum(self.parallelism.values())


class DS2Controller:
    """DS2 for one logical job.

    Args:
        graph: The job's logical graph (with its *current* parallelism).
        max_parallelism: Per-operator parallelism cap (defaults to
            unbounded; the harness passes the cluster slot budget).
        utilisation_target: Fraction of a task's true rate DS2 plans to
            use; 1.0 is the classic DS2 model. Values below 1 add
            headroom.
        min_true_rate: Floor applied to measured true rates to avoid
            divide-by-zero explosions from starved tasks.
    """

    def __init__(
        self,
        graph: LogicalGraph,
        max_parallelism: Optional[int] = None,
        utilisation_target: Fraction = 1.0,
        min_true_rate: RecordsPerSecond = 1e-6,
    ) -> None:
        graph.validate()
        if not 0 < utilisation_target <= 1.0:
            raise ValueError("utilisation_target must be in (0, 1]")
        self.graph = graph
        self.max_parallelism = max_parallelism
        self.utilisation_target = utilisation_target
        self.min_true_rate = min_true_rate

    # ------------------------------------------------------------------
    def decide(
        self,
        operator_rates: Mapping[OperatorKey, OperatorRates],
        target_source_rates: Mapping[str, RecordsPerSecond],
        current_parallelism: Optional[Mapping[str, int]] = None,
    ) -> ScalingDecision:
        """One DS2 evaluation.

        Args:
            operator_rates: Windowed operator aggregates from the metrics
                collector, keyed by (job_id, operator).
            target_source_rates: Desired generation rate per source
                operator name.
            current_parallelism: The deployment's current parallelism
                (defaults to the graph's); used to report ``changed``.

        Returns:
            The parallelism DS2 prescribes for every operator.
        """
        job = self.graph.job_id
        current = dict(current_parallelism or self.graph.parallelism_map())
        parallelism: Dict[str, int] = {}
        target_in: Dict[str, float] = {}
        target_out: Dict[str, float] = {}

        for op in self.graph.topological_order():
            spec = self.graph.operator(op)
            rates = operator_rates.get((job, op))
            selectivity = (
                rates.selectivity(fallback=spec.selectivity)
                if rates is not None
                else spec.selectivity
            )
            if spec.is_source:
                if op not in target_source_rates:
                    raise KeyError(f"no target rate for source {op!r}")
                rate_in = float(target_source_rates[op])
                parallelism[op] = current.get(op, self.graph.parallelism(op))
            else:
                rate_in = 0.0
                for edge in self.graph.upstream(op):
                    # HASH/REBALANCE edges deliver the full upstream output
                    # to this operator; the physical fan-out shares are a
                    # partitioning detail below the operator level.
                    rate_in += target_out[edge.src]
                true_rate = self.min_true_rate
                if rates is not None:
                    true_rate = max(rates.true_rate_per_task, self.min_true_rate)
                required = rate_in / (true_rate * self.utilisation_target)
                p = max(1, math.ceil(required - 1e-9))
                if self.max_parallelism is not None:
                    p = min(p, self.max_parallelism)
                parallelism[op] = p
            target_in[op] = rate_in
            target_out[op] = rate_in * selectivity

        changed = any(
            parallelism[op] != current.get(op, parallelism[op]) for op in parallelism
        )
        return ScalingDecision(
            parallelism=parallelism,
            target_input_rates=target_in,
            changed=changed,
        )

    # ------------------------------------------------------------------
    def decide_from_specs(
        self, target_source_rates: Mapping[str, float]
    ) -> ScalingDecision:
        """A DS2 decision from ground-truth specs (no measurements).

        Used to bootstrap deployments the way the paper manually tunes
        the initial configuration of the accuracy experiment (section
        6.4.1): the true rate of an operator is its uncontended service
        rate on the reference worker.
        """
        # Without measurements, approximate the true rate as the inverse
        # of the spec-derived service time on an idle reference worker.
        from repro.core.cost_model import UnitCosts  # local import: avoid cycle

        fake_rates: Dict[OperatorKey, OperatorRates] = {}
        job = self.graph.job_id
        for op in self.graph.topological_order():
            spec = self.graph.operator(op)
            uc = UnitCosts.from_spec(spec)
            worker = None
            service = uc.cpu_per_record
            # Reference disk/NIC rates come from the graph's typical
            # deployment; without a cluster we use conservative constants.
            service += uc.io_bytes_per_record / (300 * 1024 * 1024)
            service += uc.net_bytes_per_record * uc.selectivity / (1.25e9)
            true_rate = 1.0 / service if service > 0 else 1e12
            fake_rates[(job, op)] = OperatorRates(
                true_rate_per_task=true_rate,
                observed_rate=1.0,
                observed_output_rate=spec.selectivity,
                busy_fraction=1.0,
            )
        return self.decide(fake_rates, target_source_rates)
