"""Aggregation of task-level rate observations to operator level.

DS2 reasons about logical operators; the metrics collector reports task
rates. This module rolls task observations up to per-operator true
rates and selectivities, the two quantities the DS2 model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.dataflow.physical import PhysicalGraph
from repro.simulator.metrics import TaskRates

OperatorKey = Tuple[str, str]


@dataclass(frozen=True)
class OperatorRates:
    """Operator-level aggregates of one metrics window.

    Attributes:
        true_rate_per_task: Mean true processing rate over the
            operator's tasks (records/s a task sustains while busy).
        observed_rate: Total records/s the operator processed.
        observed_output_rate: Total records/s the operator emitted.
        busy_fraction: Mean busy fraction over tasks.
    """

    true_rate_per_task: float
    observed_rate: float
    observed_output_rate: float
    busy_fraction: float

    def selectivity(self, fallback: float = 1.0) -> float:
        """Observed output/input ratio, or ``fallback`` when starved."""
        if self.observed_rate <= 1e-9:
            return fallback
        return self.observed_output_rate / self.observed_rate


def aggregate_operator_rates(
    physical: PhysicalGraph, task_rates: Mapping[str, TaskRates]
) -> Dict[OperatorKey, OperatorRates]:
    """Roll task-level rates up to (job_id, operator) aggregates."""
    result: Dict[OperatorKey, OperatorRates] = {}
    for key in physical.operator_keys():
        members = physical.operator_tasks(*key)
        rates = [task_rates[t.uid] for t in members]
        true_rates = [r.true_rate for r in rates]
        result[key] = OperatorRates(
            true_rate_per_task=sum(true_rates) / len(true_rates),
            observed_rate=sum(r.observed_rate for r in rates),
            observed_output_rate=sum(r.observed_output_rate for r in rates),
            busy_fraction=sum(r.busy_fraction for r in rates) / len(rates),
        )
    return result
