"""Performance-layer benchmark: search speedups and plan-eval caching.

A standalone script (not a pytest-benchmark module) that times the three
optimisations of the performance layer and verifies each one produces
results identical to the unoptimised path:

a. **Incremental DFS bookkeeping** — the optimised sequential
   :class:`~repro.core.search.CapsSearch` against the frozen
   pre-optimisation copy in :mod:`repro.core.search_reference`, on the
   Table 2 pruning workload (Q3-inf on 8 r5d.xlarge workers).
b. **Parallel search backends** — sequential vs thread vs process on a
   full-pareto search, with bit-exact front equality across backends.
   Process-pool speedup is only meaningful on multicore hosts; below 4
   cores the criterion is recorded as not applicable.
c. **Plan-evaluation cache** — a Figure 7-style repeated-run sweep
   (deterministic CAPS placement simulated ``RUNS`` times) cold
   (``cache=None``) vs warm (a fresh cache), with byte-identical
   summaries.

Results are printed and written to ``BENCH_perf.json`` next to the
working directory via the shared writer. ``--smoke`` shrinks every
workload so the whole script finishes well under a minute for CI.

Usage:
    PYTHONPATH=src python benchmarks/bench_perf_search.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _helpers import write_bench_json

from repro.core.cost_model import CostModel, TaskCosts
from repro.core.parallel import ParallelCapsSearch
from repro.core.parallel_proc import ProcessCapsSearch
from repro.core.search import CapsSearch, SearchLimits
from repro.core.search_reference import ReferenceCapsSearch
from repro.dataflow.cluster import Cluster, R5D_XLARGE
from repro.dataflow.physical import PhysicalGraph
from repro.experiments.runner import strategy_box_runs
from repro.placement import CapsStrategy
from repro.simulator.plan_cache import PlanEvaluationCache
from repro.workloads import q3_inf, query_by_name

#: Table 2 workload (benchmarks/bench_table2_pruning.py): Q3-inf on
#: 8 r5d.xlarge workers with 4 slots each. ``--smoke`` scales the query
#: down from 24 to 18 tasks so section (a) runs in a few seconds.
SEARCH_CLUSTER = dict(spec=R5D_XLARGE, slots=4, count=8)
FULL_QUERY = dict(source=2, decode=5, inference=12, sink=5)
SMOKE_QUERY = dict(source=2, decode=4, inference=8, sink=4)
PRUNING_ALPHAS = [0.5, 0.3, 0.2]
SOURCE_RATE = 3000.0


def table2_model(smoke: bool) -> CostModel:
    shape = SMOKE_QUERY if smoke else FULL_QUERY
    graph = q3_inf(shape["source"], shape["decode"], shape["inference"], shape["sink"])
    cluster = Cluster.homogeneous(
        SEARCH_CLUSTER["spec"].with_slots(SEARCH_CLUSTER["slots"]),
        count=SEARCH_CLUSTER["count"],
    )
    physical = PhysicalGraph.expand(graph)
    costs = TaskCosts.from_specs(physical, {("Q3-inf", "source"): SOURCE_RATE})
    return CostModel(physical, cluster, costs)


def _stats_key(stats):
    return (
        stats.nodes,
        stats.plans_found,
        stats.pruned_slots,
        stats.pruned_cpu,
        stats.pruned_io,
        stats.pruned_net,
    )


def _front_key(result):
    return sorted(
        (cost.as_tuple(), tuple(sorted(plan.assignment.items())))
        for cost, plan in result.pareto.entries()
    )


def _timed(fn):
    """Time ``fn()`` in a fresh thread and return ``(seconds, value)``.

    The thread is not for parallelism — it pins the measurement to a
    reproducible stack alignment. CPython 3.11 allocates the frame
    ("data") stack in fixed-size chunks per thread; when a deep
    recursion oscillates across a chunk boundary, every call at the
    boundary pays an mmap/munmap, which can inflate a DFS run ~3x.
    Whether a boundary lands inside the recursion depends on the call
    depth at which the search *starts*, so timing the same search from
    ``main()`` vs module level can differ wildly. A fresh thread starts
    every candidate at the same shallow depth in its own first chunk,
    making timings comparable and stable regardless of the caller.
    """
    out = {}

    def work():
        start = time.perf_counter()
        out["value"] = fn()
        out["s"] = time.perf_counter() - start

    worker = threading.Thread(target=work)
    worker.start()
    worker.join()
    if "s" not in out:
        raise RuntimeError("timed candidate raised; see traceback above")
    return out["s"], out["value"]


def bench_incremental(smoke: bool) -> dict:
    """(a) optimised vs reference sequential search, identical counters."""
    model = table2_model(smoke)
    alphas = PRUNING_ALPHAS[:1] if smoke else PRUNING_ALPHAS
    rows = []
    for alpha in alphas:
        ref_s, ref = _timed(
            lambda: ReferenceCapsSearch(
                model, thresholds={"cpu": alpha}, reorder=True, collect_pareto=False
            ).run()
        )
        opt_s, opt = _timed(
            lambda: CapsSearch(
                model, thresholds={"cpu": alpha}, reorder=True, collect_pareto=False
            ).run()
        )
        assert _stats_key(ref.stats) == _stats_key(opt.stats), (
            f"optimised search diverged from reference at alpha={alpha}"
        )
        rows.append(
            {
                "alpha_cpu": alpha,
                "nodes": opt.stats.nodes,
                "plans": opt.stats.plans_found,
                "reference_s": round(ref_s, 4),
                "optimized_s": round(opt_s, 4),
                "speedup": round(ref_s / opt_s, 3) if opt_s > 0 else None,
            }
        )
        print(
            f"  alpha={alpha}: reference {ref_s:.3f}s, optimized {opt_s:.3f}s "
            f"({ref_s / opt_s:.2f}x), {opt.stats.nodes} nodes, identical stats"
        )
    total_ref = sum(r["reference_s"] for r in rows)
    total_opt = sum(r["optimized_s"] for r in rows)
    speedup = total_ref / total_opt if total_opt > 0 else None
    print(f"  overall sequential speedup: {speedup:.2f}x (target >= 1.5x)")
    return {
        "workload": "table2_pruning" + ("_smoke" if smoke else ""),
        "alphas": rows,
        "speedup": round(speedup, 3),
        "meets_1_5x": speedup >= 1.5,
        "results_identical": True,
    }


def bench_backends(smoke: bool) -> dict:
    """(b) sequential vs thread vs process full-pareto search."""
    shape = dict(source=2, decode=3, inference=5, sink=3) if smoke else dict(
        source=2, decode=4, inference=7, sink=4
    )
    graph = q3_inf(shape["source"], shape["decode"], shape["inference"], shape["sink"])
    cluster = Cluster.homogeneous(R5D_XLARGE.with_slots(4), count=6)
    physical = PhysicalGraph.expand(graph)
    costs = TaskCosts.from_specs(physical, {("Q3-inf", "source"): SOURCE_RATE})
    model = CostModel(physical, cluster, costs)

    def make():
        return CapsSearch(model, thresholds={"cpu": 0.5}, reorder=True)

    jobs = max(2, os.cpu_count() or 1)
    seq_s, seq = _timed(lambda: make().run())
    thr_s, thr = _timed(lambda: ParallelCapsSearch(make(), threads=jobs).run())
    proc_s, proc = _timed(lambda: ProcessCapsSearch(make(), jobs=jobs).run())

    for name, result in (("thread", thr), ("process", proc)):
        assert _stats_key(result.stats) == _stats_key(seq.stats), name
        assert _front_key(result) == _front_key(seq), (
            f"{name} backend pareto front differs from sequential"
        )
    cores = os.cpu_count() or 1
    process_speedup = seq_s / proc_s if proc_s > 0 else None
    applicable = cores >= 4
    print(
        f"  sequential {seq_s:.3f}s, thread({jobs}) {thr_s:.3f}s, "
        f"process({jobs}) {proc_s:.3f}s on {cores} core(s); fronts bit-identical"
    )
    if not applicable:
        print(
            f"  process-speedup criterion n/a: {cores} core(s) < 4 "
            "(the pool cannot outrun one core here)"
        )
    return {
        "workload": f"q3_inf full pareto, {sum(shape.values())} tasks, 6 workers",
        "jobs": jobs,
        "cpu_count": cores,
        "sequential_s": round(seq_s, 4),
        "thread_s": round(thr_s, 4),
        "process_s": round(proc_s, 4),
        "process_speedup": round(process_speedup, 3),
        "meets_2x_on_4_cores": (process_speedup >= 2.0) if applicable else "n/a",
        "results_identical": True,
    }


def bench_plan_cache(smoke: bool) -> dict:
    """(c) Fig. 7-style repeated-run sweep, cold vs warm."""
    runs = 4 if smoke else 10
    duration = 120.0 if smoke else 300.0
    warmup = 50.0 if smoke else 120.0
    preset = query_by_name("Q1-sliding")
    cluster = Cluster.homogeneous(R5D_XLARGE.with_slots(4), count=4)
    graph = preset.build()
    rate = preset.target_rate
    rates = {(graph.job_id, op): rate for op in graph.sources()}

    def sweep(cache):
        strategy = CapsStrategy(rates)
        return strategy_box_runs(
            graph, cluster, strategy, rate,
            runs=runs, duration_s=duration, warmup_s=warmup, cache=cache,
        )

    cold_s, cold = _timed(lambda: sweep(None))
    warm_cache = PlanEvaluationCache()
    warm_s, warm = _timed(lambda: sweep(warm_cache))

    assert [r.only for r in warm] == [r.only for r in cold], (
        "warm-cache summaries differ from fresh simulations"
    )
    speedup = cold_s / warm_s if warm_s > 0 else None
    print(
        f"  {runs}-run sweep: cold {cold_s:.3f}s, warm {warm_s:.3f}s "
        f"({speedup:.2f}x, {warm_cache.hits} hits/{warm_cache.misses} misses); "
        "summaries byte-identical"
    )
    return {
        "workload": f"{preset.name} x{runs} runs, {duration:.0f}s simulated",
        "runs": runs,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 3),
        "cache_hits": warm_cache.hits,
        "cache_misses": warm_cache.misses,
        "meets_5x": speedup >= 5.0,
        "results_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrunken workloads for CI (finishes in well under a minute)",
    )
    parser.add_argument(
        "--out-dir", default=".", help="directory for BENCH_perf.json"
    )
    args = parser.parse_args(argv)

    print("[a] incremental DFS bookkeeping (sequential, vs frozen reference)")
    incremental = bench_incremental(args.smoke)
    print("[b] search backends (sequential vs thread vs process)")
    backends = bench_backends(args.smoke)
    print("[c] plan-evaluation cache (cold vs warm sweep)")
    cache = bench_plan_cache(args.smoke)

    path = write_bench_json(
        "perf",
        {
            "smoke": args.smoke,
            "incremental_search": incremental,
            "search_backends": backends,
            "plan_cache": cache,
        },
        directory=args.out_dir,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
