"""Control-plane resilience: guarded vs unguarded under degraded telemetry.

DESIGN.md section 11: the *world* stays healthy while the controller's
inputs lie — a corrupted rate metric inflates one operator's true rate
50x for a window, then the next reconfiguration's deploy attempts fail.
Three legs run the same workload (a rate step up and back down on
Q1-sliding over a 5-worker cluster):

- **clean** — no control chaos; the baseline cost of the rate steps.
- **guarded** — chaos on, guard pipeline armed: implausible samples are
  rejected and substituted, failed deploys retried with backoff, and
  the watchdog rides out the corruption window in safe mode.
- **unguarded** — chaos on, guards off (the ablation): DS2 trusts the
  lie and scales the job into the ground, and a failed deploy goes
  undetected, leaving a zombie until the next reconfiguration.

The figure of merit is cumulative post-fault backpressure-seconds. The
script asserts the guarded leg stays within 2x of clean while the
unguarded leg is at least 5x worse, and verifies the guarded run's
control-plane trace (rejections, retries, safe-mode spans) is
byte-identical with and without fast-forward.

Results merge into ``BENCH_fault_recovery.json`` (section
``control_resilience``) alongside the data-plane recovery bench.

Usage:
    PYTHONPATH=src python benchmarks/bench_control_resilience.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _helpers import merge_bench_json

from repro.controller.capsys import ControllerConfig
from repro.controller.guards import GuardConfig
from repro.dataflow.cluster import Cluster, R5D_XLARGE
from repro.experiments.reporting import format_table
from repro.experiments.runner import adaptive_chaos_run
from repro.faults import ControlChaosSchedule
from repro.observability import Tracer
from repro.simulator.engine import SimulationConfig
from repro.workloads import query_by_name
from repro.workloads.rates import StepSchedule

CLUSTER = Cluster.homogeneous(R5D_XLARGE.with_slots(6), count=5)


def scenario(smoke: bool) -> dict:
    """Workload + chaos schedule, full-size or CI-shrunken."""
    if smoke:
        return {
            "duration_s": 450.0,
            "fault_at_s": 100.0,
            "steps": ((0.0, 5000.0), (150.0, 10000.0), (300.0, 5000.0)),
            "chaos_spec": (
                "metric_corrupt:opsliding_window@100for40x50,"
                "deploy_fail:@140x2"
            ),
        }
    return {
        "duration_s": 900.0,
        "fault_at_s": 200.0,
        "steps": ((0.0, 5000.0), (300.0, 10000.0), (600.0, 5000.0)),
        "chaos_spec": (
            "metric_corrupt:opsliding_window@200for80x50,"
            "deploy_fail:@290x2"
        ),
    }


def _config(guarded: bool, fast_forward: bool = False) -> ControllerConfig:
    return ControllerConfig(
        policy_interval_s=5.0,
        activation_time_s=60.0,
        rescale_downtime_s=5.0,
        profiling_duration_s=90.0,
        guards=GuardConfig(enabled=guarded),
        sim=SimulationConfig(fast_forward=fast_forward),
    )


def run_leg(
    scn: dict,
    chaos_spec: str | None,
    guarded: bool,
    fast_forward: bool = False,
    tracer: Tracer | None = None,
):
    graph = query_by_name("Q1-sliding").build()
    pattern = StepSchedule(scn["steps"])
    control_chaos = (
        ControlChaosSchedule.parse(chaos_spec) if chaos_spec else None
    )
    return adaptive_chaos_run(
        graph,
        CLUSTER,
        "caps",
        {op: pattern for op in graph.sources()},
        duration_s=scn["duration_s"],
        config=_config(guarded, fast_forward),
        tracer=tracer,
        control_chaos=control_chaos,
    )


def post_fault_backpressure_s(result, fault_at_s: float) -> float:
    """Integral of backpressure over sim time after the first fault."""
    cumulative = 0.0
    previous_t = fault_at_s
    for sample in result.samples:
        if sample.time_s <= fault_at_s:
            continue
        cumulative += sample.backpressure * (sample.time_s - previous_t)
        previous_t = sample.time_s
    return cumulative


def control_plane_records(tracer: Tracer) -> list:
    """Sim-domain control-plane records, stripped of stream position.

    Fast-forward legitimately replaces per-tick engine records with
    leap events, which shifts the interleaved ``seq`` numbers; what the
    control plane emits must survive byte-identical.
    """
    return [
        {k: v for k, v in r.items() if k != "seq"}
        for r in tracer.records
        if r["clock"] == "sim" and r["cat"] in ("controller", "control_fault")
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrunken horizons for CI (finishes in seconds)",
    )
    parser.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_fault_recovery.json",
    )
    args = parser.parse_args(argv)
    scn = scenario(args.smoke)
    fault_at = scn["fault_at_s"]

    print("[1/4] clean baseline (no control chaos)")
    clean_result, _ = run_leg(scn, None, guarded=True)
    print("[2/4] guarded run under control chaos")
    guarded_tracer = Tracer(run_id="guarded")
    guarded_result, guarded_ctl = run_leg(
        scn, scn["chaos_spec"], guarded=True, tracer=guarded_tracer
    )
    print("[3/4] unguarded ablation under the same chaos")
    unguarded_result, unguarded_ctl = run_leg(
        scn, scn["chaos_spec"], guarded=False
    )
    print("[4/4] guarded run again with --fast-forward")
    ff_tracer = Tracer(run_id="guarded")
    run_leg(
        scn, scn["chaos_spec"], guarded=True, fast_forward=True,
        tracer=ff_tracer,
    )

    reference = control_plane_records(guarded_tracer)
    assert reference == control_plane_records(ff_tracer), (
        "guarded control-plane trace must be byte-identical under "
        "fast-forward"
    )
    safe_mode_spans = [
        r for r in reference if r["name"] == "controller.safe_mode"
    ]
    assert safe_mode_spans, "watchdog safe-mode span must be in the trace"

    guard = guarded_ctl.last_guard
    assert guard is not None and unguarded_ctl.last_guard is None
    legs = {
        "clean": clean_result,
        "guarded": guarded_result,
        "unguarded": unguarded_result,
    }
    bp = {
        name: post_fault_backpressure_s(result, fault_at)
        for name, result in legs.items()
    }
    rows = [
        [name, round(bp[name], 1), legs[name].rescale_count()]
        for name in legs
    ]
    print()
    print(
        format_table(
            ["leg", "post-fault backpressure (s)", "rescales"],
            rows,
            title=(
                f"control-plane resilience (telemetry corrupt from "
                f"{fault_at:.0f} s, deploy failures at the next rescale)"
            ),
        )
    )
    payload = {
        "smoke": args.smoke,
        "chaos": scn["chaos_spec"],
        "post_fault_backpressure_s": bp,
        "rescales": {n: legs[n].rescale_count() for n in legs},
        "guard": {
            "rejections_total": guard.total_rejections,
            "safe_mode_entries": guard.safe_mode_entries,
            "rounds": dict(guard.rounds),
        },
        "fast_forward_identical": True,
    }
    path = merge_bench_json(
        "fault_recovery", "control_resilience", payload,
        directory=args.out_dir,
    )
    print(f"wrote {path}")

    # The guard earns its keep: degraded telemetry barely moves the
    # guarded run, while the unguarded controller propagates the lie.
    assert bp["guarded"] <= 2.0 * bp["clean"], (
        f"guarded leg too slow: {bp['guarded']:.1f} vs clean {bp['clean']:.1f}"
    )
    assert bp["unguarded"] >= 5.0 * bp["clean"], (
        f"unguarded leg unexpectedly healthy: {bp['unguarded']:.1f} "
        f"vs clean {bp['clean']:.1f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
