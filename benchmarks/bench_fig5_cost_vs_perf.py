"""Figure 5: plan cost versus measured throughput for Q1-sliding.

Paper section 4.4.1: plotting each of the 80 plans' (C_cpu, C_io,
C_net) against measured throughput shows that threshold lines on the
cost dimensions separate the high-performing plans — the empirical
justification for threshold-based pruning — while C_net is not a
dominant factor for this query.

The bench prints the scatter series and the separating thresholds.
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import run_once

from repro.experiments import enumerate_all_plans, make_motivation_cluster
from repro.experiments.figures import cost_throughput_scatter
from repro.experiments.reporting import format_table
from repro.experiments.runner import simulate_plan
from repro.workloads import q1_sliding, query_by_name


def test_fig5_cost_versus_throughput(benchmark):
    preset = query_by_name("Q1-sliding")
    cluster = make_motivation_cluster()
    graph = q1_sliding()

    def study():
        plans, model = enumerate_all_plans(graph, cluster, preset.target_rate)
        evaluated = [
            (
                cost,
                plan,
                simulate_plan(graph, cluster, plan, preset.target_rate,
                              duration_s=300, warmup_s=120),
            )
            for cost, plan in plans
        ]
        return evaluated, model

    evaluated, model = run_once(benchmark, study)
    scatter = cost_throughput_scatter(evaluated)

    # Print a decile view of the scatter (80 raw rows are unwieldy).
    ordered = sorted(scatter, key=lambda r: -r[3])
    step = max(1, len(ordered) // 10)
    rows = [
        [round(c_cpu, 3), round(c_io, 3), round(c_net, 3), round(thpt)]
        for c_cpu, c_io, c_net, thpt in ordered[::step]
    ]
    print()
    print(
        format_table(
            ["C_cpu", "C_io", "C_net", "throughput (rec/s)"],
            rows,
            title="Figure 5 -- plan cost vs throughput, Q1-sliding (decile sample)",
        )
    )

    # The separating thresholds of the dashed lines in the paper figure.
    target = preset.target_rate * 0.95
    meeting = [r for r in scatter if r[3] >= target]
    failing = [r for r in scatter if r[3] < target]
    io_threshold = max(r[1] for r in meeting)
    cpu_threshold = max(r[0] for r in meeting)
    print(f"separating thresholds: alpha_cpu <= {cpu_threshold:.3f}, "
          f"alpha_io <= {io_threshold:.3f}")
    print(f"C_net insensitive for Q1: "
          f"{'net' in model.insensitive_dimensions()} (paper: yes)")

    # every failing plan violates at least one separating threshold
    assert all(
        r[1] > io_threshold + 1e-9 or r[0] > cpu_threshold + 1e-9 for r in failing
    )
    # C_io separates: all plans under the io threshold with low cpu meet target
    assert "net" in model.insensitive_dimensions()
