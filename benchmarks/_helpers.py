"""Shared fixtures and helpers for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md section 3 for the index) and prints it in paper-shaped
rows. ``pytest-benchmark`` times the core computation of each experiment
with a single round — these are experiments, not micro-benchmarks, so
wall-clock repetition would only burn time without adding information.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, Mapping, Tuple

from repro.controller.capsys import CAPSysController, ControllerConfig
from repro.dataflow.cluster import Cluster
from repro.dataflow.graph import LogicalGraph
from repro.workloads import QueryPreset

#: Simulated durations for the experiment benches. The paper warms up
#: 6-10 min and measures 10-15 min; simulated time is cheap but not
#: free, so the benches use a compressed but still steady-state window.
DURATION_S = 420.0
WARMUP_S = 180.0


def write_bench_json(name: str, payload: Mapping, directory: str = ".") -> str:
    """Write a machine-readable ``BENCH_<name>.json`` result file.

    The shared writer for the perf-trajectory files: every entry carries
    enough environment metadata (host python, core count, timestamp) for
    a later run to decide whether a comparison is apples-to-apples.
    Returns the path written.
    """
    path = os.path.join(directory, f"BENCH_{name}.json")
    document = {
        "bench": name,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "results": dict(payload),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def merge_bench_json(name: str, section: str, payload: Mapping, directory: str = ".") -> str:
    """Merge one result section into an existing ``BENCH_<name>.json``.

    Several scripts contribute to the same trajectory file (e.g.
    ``bench_perf_search.py`` and ``bench_perf_engine.py`` both feed
    ``BENCH_perf.json``); this writer preserves the other sections
    instead of clobbering them, refreshing only the shared environment
    metadata. Starts a fresh document when the file is absent or
    unreadable. Returns the path written.
    """
    path = os.path.join(directory, f"BENCH_{name}.json")
    results: Dict = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            previous = json.load(fh)
        if isinstance(previous.get("results"), dict):
            results = previous["results"]
    except (OSError, ValueError):
        pass
    results[section] = dict(payload)
    return write_bench_json(name, results, directory=directory)


def run_once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def profiled_controller(
    graph: LogicalGraph,
    cluster: Cluster,
    strategy="caps",
    **config_kwargs,
) -> CAPSysController:
    """A controller with the profiling phase already run."""
    config = ControllerConfig(**config_kwargs) if config_kwargs else None
    controller = CAPSysController(graph, cluster, strategy=strategy, config=config)
    controller.profile()
    return controller


def ds2_sized_graph(
    preset: QueryPreset, cluster: Cluster, rate: float
) -> Tuple[LogicalGraph, Dict[Tuple[str, str], float], dict]:
    """The DS2-sized logical graph for a preset at a target rate.

    Returns (scaled graph, engine source-rate map, profiled unit costs),
    which is the deployment state right before placement in the CAPSys
    workflow (paper Figure 6, steps 2-3).
    """
    g = preset.build()
    controller = profiled_controller(g, cluster)
    unit_costs = controller.profile()
    parallelism = controller.initial_parallelism({op: rate for op in g.sources()})
    scaled = g.with_parallelism(parallelism)
    rates = {(scaled.job_id, op): rate for op in scaled.sources()}
    return scaled, rates, unit_costs
