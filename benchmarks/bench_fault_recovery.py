"""Fault recovery: degraded-mode CAPS replanning vs evenly spreading.

DESIGN.md section 8: the same deterministic chaos schedule — a disk
straggler appearing on one worker, then a crash of another — hits the
adaptive controller twice, once placing with CAPS and once with Flink's
``evenly`` policy. The controller replans both on the surviving
workers; the difference is what the placement knows. CAPS searches the
*degraded* cluster view, so it steers the I/O-heavy tasks away from the
straggler; evenly balances task counts blindly and keeps feeding it.

The bench prints recovery time back to the 95% source-rate SLO after
the crash plus the cumulative backpressure integral, and asserts CAPS
recovers with measurably less accumulated backpressure.
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import merge_bench_json, run_once

from repro.dataflow.cluster import Cluster, R5D_XLARGE
from repro.controller.capsys import ControllerConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import adaptive_chaos_run
from repro.faults import ChaosSchedule, CheckpointConfig
from repro.placement import FlinkEvenlyStrategy
from repro.workloads import query_by_name
from repro.workloads.rates import ConstantRate

CLUSTER = Cluster.homogeneous(R5D_XLARGE.with_slots(6), count=5)
RATE = 10_000.0
DURATION_S = 700.0
CRASH_AT_S = 180.0
#: w1 keeps 30% of its disk bandwidth from t=150; w3 dies at t=180 and
#: never comes back — the job must fit on 4 workers, one a straggler.
CHAOS = ChaosSchedule.parse("disk:w1@150x0.3,crash:w3@180")
CONFIG = ControllerConfig(
    policy_interval_s=5.0,
    activation_time_s=60.0,
    rescale_downtime_s=5.0,
    checkpoint=CheckpointConfig(enabled=True, interval_s=30.0),
)


def _run(strategy):
    preset = query_by_name("Q1-sliding")
    graph = preset.build()
    result, _controller = adaptive_chaos_run(
        graph,
        CLUSTER,
        strategy,
        {op: ConstantRate(RATE) for op in graph.sources()},
        duration_s=DURATION_S,
        chaos=CHAOS,
        config=CONFIG,
    )
    return result


def _recovery_stats(result):
    """(recovery seconds after the crash, post-crash backpressure integral)."""
    recovery_s = DURATION_S - CRASH_AT_S
    cumulative_bp = 0.0
    previous_t = CRASH_AT_S
    for sample in result.samples:
        if sample.time_s <= CRASH_AT_S:
            continue
        cumulative_bp += sample.backpressure * (sample.time_s - previous_t)
        previous_t = sample.time_s
    for sample in result.samples:
        if (
            sample.time_s > CRASH_AT_S
            and sample.throughput >= 0.95 * sample.target_rate
        ):
            recovery_s = sample.time_s - CRASH_AT_S
            break
    return recovery_s, cumulative_bp


def test_fault_recovery_caps_vs_evenly(benchmark):
    def study():
        return {
            "CAPSys": _run("caps"),
            "Evenly": _run(FlinkEvenlyStrategy()),
        }

    results = run_once(benchmark, study)

    rows = []
    payload = {}
    for policy, result in results.items():
        recovery_s, cumulative_bp = _recovery_stats(result)
        fault_rescales = sum(
            1 for e in result.events if e.reason.startswith("fault:")
        )
        rows.append(
            [policy, round(recovery_s), round(cumulative_bp, 1), fault_rescales]
        )
        payload[policy] = {
            "recovery_s": recovery_s,
            "cumulative_backpressure_s": cumulative_bp,
            "fault_rescales": fault_rescales,
            "rescales": result.rescale_count(),
        }
    print()
    print(
        format_table(
            ["policy", "recovery (s)", "cum. backpressure (s)", "fault rescales"],
            rows,
            title=(
                f"fault recovery at {RATE:.0f} rec/s "
                f"(crash at {CRASH_AT_S:.0f} s, disk straggler from 150 s)"
            ),
        )
    )
    # Merged as a section: bench_control_resilience.py shares this file.
    merge_bench_json("fault_recovery", "fault_recovery", payload)

    caps_rec, caps_bp = _recovery_stats(results["CAPSys"])
    evenly_rec, evenly_bp = _recovery_stats(results["Evenly"])
    # Both controllers replan on the crash; CAPS also knows about the
    # straggler and must come back strictly cleaner.
    assert caps_rec <= evenly_rec
    assert caps_bp < 0.9 * evenly_bp
