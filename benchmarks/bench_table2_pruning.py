"""Table 2: search-space size under threshold pruning and reordering.

Paper section 4.4: for Q3-inf on a cluster of 8 workers with 4 slots
each, tightening alpha_cpu shrinks the discovered-plan count from
millions to zero and exploration reordering removes additional node
expansions by pruning near the root.

Our Q3-inf instance is scaled to 24 tasks (the paper's exact task count
for this table is not stated; theirs yields 3.25M plans, ours 0.9M —
the same order of magnitude and, more importantly, the same collapse
shape under pruning). Integer task granularity makes alpha below ~0.15
infeasible outright, which corresponds to the paper's 0-plan column at
alpha 0.01.
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import run_once

from repro.dataflow.cluster import Cluster, R5D_XLARGE
from repro.dataflow.physical import PhysicalGraph
from repro.core.cost_model import CostModel, TaskCosts
from repro.core.search import CapsSearch, SearchLimits
from repro.experiments.reporting import format_table
from repro.workloads import q3_inf

ALPHAS = [float("inf"), 0.5, 0.3, 0.2, 0.15, 0.1]


def _count(model, alpha, reorder):
    search = CapsSearch(
        model, thresholds={"cpu": alpha}, reorder=reorder, collect_pareto=False
    )
    result = search.run(SearchLimits(max_nodes=50_000_000, timeout_s=300.0))
    assert result.stats.exhausted
    return result.stats


def test_table2_pruning_and_reordering(benchmark):
    graph = q3_inf(2, 5, 12, 5)  # 24 tasks
    cluster = Cluster.homogeneous(R5D_XLARGE.with_slots(4), count=8)
    physical = PhysicalGraph.expand(graph)
    costs = TaskCosts.from_specs(physical, {("Q3-inf", "source"): 3000.0})
    model = CostModel(physical, cluster, costs)

    def study():
        rows = []
        for alpha in ALPHAS:
            plain = _count(model, alpha, reorder=False)
            reordered = _count(model, alpha, reorder=True)
            rows.append((alpha, plain, reordered))
        return rows

    rows = run_once(benchmark, study)

    print()
    print(
        format_table(
            ["alpha_cpu", "plans", "#nodes", "#nodes w/ reordering"],
            [
                [
                    "inf" if a == float("inf") else a,
                    plain.plans_found,
                    plain.nodes,
                    reordered.nodes,
                ]
                for a, plain, reordered in rows
            ],
            title=(
                "Table 2 -- discovered plans and search-tree size vs alpha_cpu "
                "(Q3-inf, 8 workers x 4 slots, 24 tasks)"
            ),
        )
    )

    # plan count collapses monotonically to zero
    plan_counts = [plain.plans_found for _, plain, _ in rows]
    assert plan_counts == sorted(plan_counts, reverse=True)
    assert plan_counts[0] > 100_000
    assert plan_counts[-1] == 0
    # node counts shrink with the threshold
    node_counts = [plain.nodes for _, plain, _ in rows]
    assert node_counts[0] > node_counts[-1] * 100
    # reordering never expands more nodes, and helps at tight thresholds
    for _, plain, reordered in rows:
        assert reordered.nodes <= plain.nodes
        assert reordered.plans_found == plain.plans_found
    tight = rows[-1]
    assert tight[2].nodes < max(1, tight[1].nodes)
