"""Skew ablation: CAPS placement groups under skewed key distributions.

Paper section 5.2: skew-aware partitioners can organise an operator's
tasks into placement groups of equal demand which CAPS explores as
separate layers, and "CAPSys already improves query performance in the
presence of skew, compared to the baseline strategies" (results in the
authors' technical report).

We drive Q1-sliding with a Zipf-skewed key distribution over the window
tasks (quantised to two demand buckets, as a skew-aware partitioner
would produce). The skew reaches both the cost model and the simulator
through the physical channels, so CAPS' placement-group handling is
exercised end-to-end: hot window tasks must be separated, which the
skew-blind baselines do only by luck.
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import DURATION_S, WARMUP_S, run_once

from repro.dataflow.physical import PhysicalGraph
from repro.core.cost_model import CostModel, TaskCosts
from repro.core.search import CapsSearch, SearchLimits
from repro.core.skew import bucket_shares, zipf_shares
from repro.experiments import make_motivation_cluster
from repro.experiments.reporting import box_stats, format_percent, format_table
from repro.placement import FlinkDefaultStrategy, FlinkEvenlyStrategy
from repro.simulator.engine import FluidSimulation
from repro.workloads import q1_sliding, query_by_name


def test_ablation_skewed_window_tasks(benchmark):
    preset = query_by_name("Q1-sliding")
    cluster = make_motivation_cluster()
    graph = q1_sliding()
    # skew concentrates load on the hot bucket: run at 75% of the
    # uniform-calibrated rate so a good placement can still absorb it
    rate = preset.target_rate * 0.75
    shares = bucket_shares(zipf_shares(8, exponent=0.8), groups=2)
    physical = PhysicalGraph.expand(graph, skew={"sliding_window": shares})
    costs = TaskCosts.from_specs(physical, {("Q1-sliding", "source"): rate})
    model = CostModel(physical, cluster, costs)

    def simulate(plan):
        sim = FluidSimulation(
            physical, cluster, plan, {("Q1-sliding", "source"): rate}
        )
        return sim.run(DURATION_S, warmup_s=WARMUP_S).only

    def study():
        search = CapsSearch(model)
        assert len([l for l in search.layers if l.key[1] == "sliding_window"]) == 2
        caps_plan = search.run(SearchLimits(timeout_s=10.0)).best_plan
        rows = [("caps (placement groups)", [simulate(caps_plan)])]
        for strategy in (FlinkDefaultStrategy(), FlinkEvenlyStrategy()):
            summaries = []
            for seed in range(4):
                strategy.seed = seed
                plan = strategy.place_validated(physical, cluster)
                summaries.append(simulate(plan))
            rows.append((strategy.name, summaries))
        return rows

    rows = run_once(benchmark, study)

    print()
    print(
        format_table(
            ["strategy", "thpt med", "thpt min", "bp med"],
            [
                [
                    name,
                    round(box_stats([s.throughput for s in summaries]).median),
                    round(box_stats([s.throughput for s in summaries]).minimum),
                    format_percent(
                        box_stats([s.backpressure for s in summaries]).median
                    ),
                ]
                for name, summaries in rows
            ],
            title=(
                "Skew ablation -- Q1-sliding, window tasks under Zipf(0.8) key "
                f"skew in 2 placement groups (target {rate:.0f} rec/s)"
            ),
        )
    )

    caps = rows[0][1][0]
    assert caps.meets_target()
    for name, summaries in rows[1:]:
        worst = min(s.throughput for s in summaries)
        assert caps.throughput >= worst - 1e-6, name
