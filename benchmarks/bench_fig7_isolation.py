"""Figure 7: per-query comparison of CAPS vs Flink default/evenly.

Paper section 6.2.1: each of the six queries is deployed in isolation
on 4 m5d.2xlarge workers (8 slots each); placement by CAPS vs Flink's
``default`` and ``evenly`` policies, repeated with fresh randomness to
capture baseline variance. CAPS consistently achieves the highest
throughput, lowest backpressure and latency, and zero variance across
runs.
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import DURATION_S, WARMUP_S, ds2_sized_graph, run_once

from repro.experiments import make_isolation_cluster
from repro.experiments.reporting import box_stats, format_percent, format_table
from repro.experiments.runner import strategy_box_runs
from repro.placement import CapsStrategy, FlinkDefaultStrategy, FlinkEvenlyStrategy
from repro.workloads import ALL_QUERIES

RUNS = 5


def test_fig7_isolation_comparison(benchmark):
    cluster = make_isolation_cluster()

    def study():
        results = {}
        for preset in ALL_QUERIES:
            scaled, rates, unit_costs = ds2_sized_graph(
                preset, cluster, preset.isolation_rate
            )
            strategies = [
                CapsStrategy(rates, unit_costs_provider=lambda p, uc=unit_costs: uc),
                FlinkDefaultStrategy(),
                FlinkEvenlyStrategy(),
            ]
            per_query = {}
            for strategy in strategies:
                runs = strategy_box_runs(
                    scaled, cluster, strategy, preset.isolation_rate,
                    runs=RUNS, duration_s=DURATION_S, warmup_s=WARMUP_S,
                )
                per_query[strategy.name] = [r.only for r in runs]
            results[preset.name] = (preset.isolation_rate, per_query)
        return results

    results = run_once(benchmark, study)

    rows = []
    for query, (target, per_query) in results.items():
        for strategy, summaries in per_query.items():
            thpt = box_stats([s.throughput for s in summaries])
            bp = box_stats([s.backpressure for s in summaries])
            lat = box_stats([s.latency_s for s in summaries])
            rows.append(
                [
                    query,
                    strategy,
                    round(summaries[0].target_rate),  # job total over sources
                    round(thpt.median),
                    round(thpt.minimum),
                    round(thpt.maximum),
                    format_percent(bp.median),
                    round(lat.median, 2),
                ]
            )
    print()
    print(
        format_table(
            [
                "query", "strategy", "target", "thpt med", "thpt min",
                "thpt max", "bp med", "latency med (s)",
            ],
            rows,
            title=(
                f"Figure 7 -- isolation comparison on 4 x m5d.2xlarge "
                f"({RUNS} seeded runs per strategy)"
            ),
        )
    )

    for query, (target, per_query) in results.items():
        caps = per_query["caps"]
        # CAPS meets target on every run and is deterministic
        assert all(s.meets_target() for s in caps), query
        assert max(s.throughput for s in caps) - min(
            s.throughput for s in caps
        ) < 1e-6, query
        # CAPS at least ties the baselines' typical (median) performance
        # (0.5% tolerance: both can sit essentially at the target, where
        # GC residue decides the last few records per second).
        for baseline in ("default", "evenly"):
            caps_min = min(s.throughput for s in caps)
            base = sorted(s.throughput for s in per_query[baseline])
            median = base[len(base) // 2]
            assert caps_min >= median * 0.995, (query, baseline)
