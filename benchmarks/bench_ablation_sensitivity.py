"""Calibration-sensitivity ablation: do the conclusions survive
halving/doubling the contention coefficients?

Not a paper table. The reproduction's simulator encodes contention
through two coefficients (CPU thread oversubscription, RocksDB
compaction interference). This bench re-runs the Figure 3a/3b
co-location contrasts across a 0.5x / 1x / 2x coefficient grid and
asserts the *ordering* — balance beats co-location — at every point,
while the penalty magnitude scales with the coefficients as expected.
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import run_once

from repro.experiments import make_motivation_cluster
from repro.experiments.reporting import format_percent, format_table
from repro.experiments.runner import plan_with_colocation
from repro.experiments.sweeps import default_coefficient_grid, sweep_colocation_penalty
from repro.workloads import q2_join, q3_inf, query_by_name


def test_sensitivity_of_colocation_conclusions(benchmark):
    cluster = make_motivation_cluster()
    grid = default_coefficient_grid()

    def study():
        results = {}
        g3 = q3_inf()
        results["Q3-inf / compute"] = sweep_colocation_penalty(
            g3,
            cluster,
            plan_with_colocation(g3, cluster, ["inference"], 1),
            plan_with_colocation(g3, cluster, ["inference"], 4),
            rate=query_by_name("Q3-inf").target_rate,
            configs=grid,
        )
        g2 = q2_join()
        results["Q2-join / disk I/O"] = sweep_colocation_penalty(
            g2,
            cluster,
            plan_with_colocation(g2, cluster, ["tumbling_join"], 2),
            plan_with_colocation(g2, cluster, ["tumbling_join"], 4),
            rate=query_by_name("Q2-join").target_rate,
            configs=grid,
        )
        return results

    results = run_once(benchmark, study)

    rows = []
    for experiment, points in results.items():
        for point in points:
            rows.append(
                [
                    experiment,
                    point.label,
                    round(point.balanced_throughput),
                    round(point.piled_throughput),
                    format_percent(point.penalty),
                ]
            )
    print()
    print(
        format_table(
            ["experiment", "coefficients", "balanced thpt", "co-located thpt",
             "penalty"],
            rows,
            title="Sensitivity -- co-location penalty vs contention calibration",
        )
    )

    for experiment, points in results.items():
        # the ordering holds at every calibration
        assert all(p.ordering_holds for p in points), experiment
        # the penalty grows (weakly) with the coefficients
        penalties = [p.penalty for p in points]
        assert penalties[0] <= penalties[-1] + 0.02, experiment
        # at the calibrated point the penalty is material
        assert penalties[1] > 0.1, experiment
