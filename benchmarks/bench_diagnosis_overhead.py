"""Diagnosis-layer overhead benchmark: attribution must stay cheap.

Times the fluid engine with and without the root-cause diagnosis layer
(``engine.enable_diagnosis()`` — contention attribution + backpressure
provenance, DESIGN.md section 10) on two workloads:

a. **Steady contended run** — Q1-sliding at its isolation rate for 600
   simulated seconds; per-tick inputs converge quickly, so the
   collector's signature cache turns each tick into array comparisons
   plus a cached-increment addition.
b. **Chaos run** — Q2-join with a disk degrade/recover schedule;
   signatures churn around fault edges, exercising the recompute path.

Every run also re-verifies that diagnosis is a pure observer: the
engine summary must be byte-identical with the layer on and off. The
acceptance criterion is a mean overhead of at most 5% across the two
workloads (enforced on full runs, reported on ``--smoke``). Results
are merged into ``BENCH_perf.json`` under ``diagnosis_overhead``.

Usage:
    PYTHONPATH=src python benchmarks/bench_diagnosis_overhead.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _helpers import ds2_sized_graph, merge_bench_json, profiled_controller

from repro.dataflow.physical import PhysicalGraph
from repro.experiments.runner import make_isolation_cluster
from repro.faults.injector import EngineFaultDriver
from repro.faults.schedule import ChaosSchedule
from repro.simulator.engine import FluidSimulation, SimulationConfig
from repro.workloads import query_by_name

#: Acceptance bound: mean relative slowdown with attribution enabled.
MAX_OVERHEAD = 0.05

#: Timing repeats per configuration; baseline and diagnosis runs are
#: interleaved (paired) and the minimum of each side is reported, so a
#: noisy scheduling window hits both sides rather than biasing one.
REPEATS = 5


def _deployment(preset_name: str, rate: float):
    preset = query_by_name(preset_name)
    cluster = make_isolation_cluster()
    scaled, rates, _ = ds2_sized_graph(preset, cluster, rate)
    controller = profiled_controller(scaled, cluster)
    physical = PhysicalGraph.expand(scaled)
    plan = controller.place(physical, {op: rate for op in scaled.sources()})
    return physical, cluster, plan, rates


def _one_run(physical, cluster, plan, rates, duration_s, diagnose, chaos):
    sim = FluidSimulation(
        physical, cluster, plan, rates, config=SimulationConfig()
    )
    if chaos is not None:
        sim.set_fault_driver(EngineFaultDriver(chaos, cluster))
    if diagnose:
        sim.enable_diagnosis()
    start = time.perf_counter()
    summary = sim.run(duration_s)
    return time.perf_counter() - start, summary


def bench_workload(name: str, preset_name: str, duration_s: float,
                   chaos=None) -> dict:
    preset = query_by_name(preset_name)
    deployment = _deployment(preset_name, preset.isolation_rate)
    base_s = diag_s = None
    base_summary = diag_summary = None
    for _ in range(REPEATS):
        elapsed, base_summary = _one_run(
            *deployment, duration_s, diagnose=False, chaos=chaos
        )
        base_s = elapsed if base_s is None else min(base_s, elapsed)
        elapsed, diag_summary = _one_run(
            *deployment, duration_s, diagnose=True, chaos=chaos
        )
        diag_s = elapsed if diag_s is None else min(diag_s, elapsed)
    assert repr(base_summary) == repr(diag_summary), (
        f"{name}: diagnosis perturbed the engine result"
    )
    overhead = (diag_s - base_s) / base_s
    print(
        f"  {duration_s:.0f}s {name}: baseline {base_s * 1e3:.1f}ms, "
        f"with diagnosis {diag_s * 1e3:.1f}ms "
        f"({overhead:+.1%} overhead); summaries byte-identical"
    )
    return {
        "workload": f"{preset_name}, {duration_s:.0f}s simulated",
        "baseline_s": round(base_s, 4),
        "diagnosis_s": round(diag_s, 4),
        "overhead": round(overhead, 4),
        "results_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrunken horizons for CI (finishes in seconds)",
    )
    parser.add_argument(
        "--out-dir", default=".", help="directory for BENCH_perf.json"
    )
    args = parser.parse_args(argv)
    duration = 150.0 if args.smoke else 600.0

    print("[a] steady contended run (Q1-sliding isolation)")
    steady = bench_workload("steady Q1-sliding", "Q1-sliding", duration)
    print("[b] chaos run (Q2-join + disk degrade/recover)")
    chaos_spec = (
        "disk:w1@50x0.5,recover:w1@100" if args.smoke
        else "disk:w1@200x0.5,recover:w1@380"
    )
    chaos = bench_workload(
        "chaos Q2-join", "Q2-join", duration,
        chaos=ChaosSchedule.parse(chaos_spec),
    )

    mean_overhead = (steady["overhead"] + chaos["overhead"]) / 2.0
    meets = mean_overhead <= MAX_OVERHEAD
    print(
        f"mean overhead {mean_overhead:+.1%} "
        f"(bound {MAX_OVERHEAD:.0%}: {'ok' if meets else 'EXCEEDED'})"
    )
    if not args.smoke:
        assert meets, (
            f"diagnosis overhead {mean_overhead:.1%} exceeds the "
            f"{MAX_OVERHEAD:.0%} bound"
        )

    os.makedirs(args.out_dir, exist_ok=True)
    path = merge_bench_json(
        "perf",
        "diagnosis_overhead",
        {
            "smoke": args.smoke,
            "steady": steady,
            "chaos": chaos,
            "mean_overhead": round(mean_overhead, 4),
            "meets_5pct": meets,
        },
        directory=args.out_dir,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
