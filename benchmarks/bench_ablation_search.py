"""Ablation benchmarks for the CAPS design choices (DESIGN.md section 5).

Not a paper table — these quantify how much each mechanism contributes:

- exploration reordering (section 4.4.2): node expansions saved under a
  tight threshold;
- systematic search vs the greedy warm start: plan-cost improvement;
- CAPS vs naive random sampling at an equal candidate budget;
- parallel search driver: correctness-preserving thread scaling.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _helpers import run_once

from repro.dataflow.cluster import Cluster, R5D_XLARGE
from repro.dataflow.physical import PhysicalGraph
from repro.core.cost_model import CostModel, TaskCosts
from repro.core.greedy import greedy_balanced_plan
from repro.core.parallel import ParallelCapsSearch
from repro.core.search import CapsSearch, SearchLimits
from repro.experiments.reporting import format_table
from repro.placement.random_search import random_feasible_plan
from repro.workloads import q2_join, q3_inf

import random


def q3_model(slots=4, workers=8, rate=3000.0, parallelism=(2, 5, 12, 5)):
    graph = q3_inf(*parallelism)
    cluster = Cluster.homogeneous(R5D_XLARGE.with_slots(slots), count=workers)
    physical = PhysicalGraph.expand(graph)
    costs = TaskCosts.from_specs(physical, {("Q3-inf", "source"): rate})
    return physical, cluster, CostModel(physical, cluster, costs)


def test_ablation_reordering(benchmark):
    """Node expansions with and without exploration reordering."""
    _, _, model = q3_model()

    def study():
        rows = []
        for alpha in (0.3, 0.2, 0.15):
            plain = CapsSearch(
                model, thresholds={"cpu": alpha}, reorder=False, collect_pareto=False
            ).run()
            reordered = CapsSearch(
                model, thresholds={"cpu": alpha}, reorder=True, collect_pareto=False
            ).run()
            rows.append((alpha, plain.stats.nodes, reordered.stats.nodes))
        return rows

    rows = run_once(benchmark, study)
    print()
    print(
        format_table(
            ["alpha_cpu", "#nodes", "#nodes w/ reordering", "saved"],
            [
                [a, n, nr, f"{(1 - nr / max(1, n)):.0%}"]
                for a, n, nr in rows
            ],
            title="Ablation -- exploration reordering (Q3-inf, 24 tasks)",
        )
    )
    assert all(nr <= n for _, n, nr in rows)


def test_ablation_search_vs_greedy(benchmark):
    """How much does systematic search improve on the greedy seed?"""
    physical, cluster, model = q3_model()
    weights = {"cpu": 1.0, "io": 1.0, "net": 1.0}

    def study():
        greedy_cost = model.cost(greedy_balanced_plan(model, weights))
        search = CapsSearch(model, thresholds={"cpu": 0.3}, selection_weights=weights)
        result = search.run(SearchLimits(timeout_s=10.0))
        return greedy_cost, result.best_cost

    greedy_cost, search_cost = run_once(benchmark, study)
    print()
    print(
        format_table(
            ["method", "C_cpu", "C_io", "C_net", "weighted total"],
            [
                ["greedy", round(greedy_cost.cpu, 3), round(greedy_cost.io, 3),
                 round(greedy_cost.net, 3), round(greedy_cost.weighted_total(weights), 3)],
                ["CAPS search", round(search_cost.cpu, 3), round(search_cost.io, 3),
                 round(search_cost.net, 3), round(search_cost.weighted_total(weights), 3)],
            ],
            title="Ablation -- greedy warm start vs systematic search",
        )
    )
    assert search_cost.weighted_total(weights) <= greedy_cost.weighted_total(weights) + 1e-9


def test_ablation_caps_vs_random_sampling(benchmark):
    """CAPS vs best-of-N random plans at a matched candidate budget."""
    physical, cluster, model = q3_model()

    def study():
        search = CapsSearch(model, thresholds={"cpu": 0.3}, collect_pareto=True)
        result = search.run(SearchLimits(timeout_s=10.0))
        budget = max(1, result.stats.plans_found)
        rng = random.Random(0)
        best_random = None
        for _ in range(min(budget, 5000)):
            plan = random_feasible_plan(physical, cluster, rng)
            cost = model.cost(plan)
            if best_random is None or cost.total() < best_random.total():
                best_random = cost
        return result.best_cost, best_random, budget

    caps_cost, random_cost, budget = run_once(benchmark, study)
    print()
    print(
        format_table(
            ["method", "candidates", "total cost"],
            [
                ["CAPS", budget, round(caps_cost.total(), 3)],
                ["random sampling", min(budget, 5000), round(random_cost.total(), 3)],
            ],
            title="Ablation -- CAPS vs random sampling at equal budget",
        )
    )
    assert caps_cost.total() <= random_cost.total() + 1e-9


def test_ablation_parallel_threads(benchmark):
    """Thread scaling of the parallel driver (GIL-limited; correctness
    and work partitioning are the point, not wall-clock speedup)."""
    def study():
        rows = []
        for threads in (1, 2, 4):
            _, _, model = q3_model(parallelism=(1, 3, 6, 3))
            search = CapsSearch(model, thresholds={"cpu": 0.5}, collect_pareto=True)
            started = time.monotonic()
            if threads == 1:
                result = search.run()
            else:
                result = ParallelCapsSearch(search, threads=threads).run()
            rows.append(
                (threads, time.monotonic() - started,
                 result.stats.plans_found, result.best_cost.total())
            )
        return rows

    rows = run_once(benchmark, study)
    print()
    print(
        format_table(
            ["threads", "time (s)", "plans", "best total cost"],
            [[t, round(el, 3), plans, round(cost, 4)] for t, el, plans, cost in rows],
            title="Ablation -- parallel search driver",
        )
    )
    # identical result quality regardless of thread count
    costs = {round(cost, 9) for _, _, _, cost in rows}
    assert len(costs) == 1
    plans = {p for _, _, p, _ in rows}
    assert len(plans) == 1
