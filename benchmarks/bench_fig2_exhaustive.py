"""Figure 2: exhaustive placement-plan search for Q1-sliding.

Paper section 3.2: deploying Q1-sliding on the 4-worker / 16-slot
cluster yields 80 possible placement plans; the three best reach the
target (~14k rec/s, low backpressure) while the three worst collapse,
and only 3 of 80 plans meet the target performance.

This bench executes every plan on the simulator and prints the P1-P3 /
P4-P6 rows of Figure 2 plus the meets-target census.
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import DURATION_S, WARMUP_S, run_once

from repro.experiments import (
    enumerate_all_plans,
    make_motivation_cluster,
)
from repro.experiments.figures import best_and_worst, rank_plans_by_throughput
from repro.experiments.reporting import format_percent, format_table
from repro.experiments.runner import simulate_plan
from repro.workloads import q1_sliding, query_by_name


def test_fig2_exhaustive_q1_study(benchmark):
    preset = query_by_name("Q1-sliding")
    cluster = make_motivation_cluster()
    graph = q1_sliding()

    def study():
        plans, model = enumerate_all_plans(graph, cluster, preset.target_rate)
        evaluated = []
        for cost, plan in plans:
            summary = simulate_plan(
                graph, cluster, plan, preset.target_rate,
                duration_s=DURATION_S, warmup_s=WARMUP_S,
            )
            evaluated.append((cost, plan, summary))
        return evaluated

    evaluated = run_once(benchmark, study)

    assert len(evaluated) == 80, "paper reports exactly 80 plans"
    ranked = rank_plans_by_throughput(evaluated)
    picked = best_and_worst(ranked, k=3)
    rows = [
        [
            entry.label,
            round(entry.summary.throughput),
            format_percent(entry.summary.backpressure),
            round(entry.cost.cpu, 3),
            round(entry.cost.io, 3),
            round(entry.cost.net, 3),
        ]
        for entry in picked
    ]
    print()
    print(
        format_table(
            ["plan", "throughput (rec/s)", "backpressure", "C_cpu", "C_io", "C_net"],
            rows,
            title=(
                f"Figure 2 -- best/worst of all 80 Q1-sliding plans "
                f"(target {preset.target_rate:.0f} rec/s)"
            ),
        )
    )
    meeting = [
        e for e in evaluated if e[2].throughput >= preset.target_rate * 0.95
    ]
    print(f"plans meeting target: {len(meeting)} / {len(evaluated)} "
          f"(paper: 3 / 80)")

    assert len(meeting) == 3
    best, worst = ranked[0].summary, ranked[-1].summary
    assert best.throughput > worst.throughput * 1.4
    assert worst.backpressure > 0.3
