"""Benchmarks for the sharded record runtime (DESIGN.md section 12).

Not a paper table — these quantify the record-level execution layer:

- sharded-executor throughput in records/s of wall-clock across the
  degenerate, semantic, and paced modes (the price of real records vs
  the fluid model's rate arithmetic);
- the fluid-vs-runtime cross-validation harness end to end, reporting
  the measured prediction errors alongside the timing.
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import merge_bench_json, run_once

from repro.dataflow.cluster import Cluster, R5D_XLARGE
from repro.dataflow.physical import PhysicalGraph
from repro.experiments.reporting import format_table
from repro.experiments.validate_runtime import cross_validate, format_validation
from repro.placement.flink_evenly import FlinkEvenlyStrategy
from repro.runtime.parallel import ShardedExecutor
from repro.runtime.queries import hot_items_template
from repro.workloads.nexmark import NexmarkGenerator
from repro.workloads.queries import q1_sliding


def _bids(count=20_000):
    stream = NexmarkGenerator(seed=11, events_per_second=2000.0).take(count)
    return [r for kind, r in stream if kind == "bid"]


def test_sharded_executor_modes(benchmark):
    """Records/s of wall-clock for each execution mode on Q1."""
    bids = _bids()

    def degenerate():
        return ShardedExecutor(hot_items_template(bids)).run()

    def semantic():
        physical = PhysicalGraph.expand(q1_sliding(1, 2, 2))
        return ShardedExecutor(
            hot_items_template(bids), physical=physical
        ).run()

    def paced():
        physical = PhysicalGraph.expand(q1_sliding(1, 2, 2))
        cluster = Cluster.homogeneous(R5D_XLARGE.with_slots(4), count=2)
        plan = FlinkEvenlyStrategy(seed=0).place_validated(physical, cluster)
        return ShardedExecutor(
            hot_items_template(bids),
            physical=physical,
            plan=plan,
            cluster=cluster,
            source_rates={"source": 2000.0},
        ).run(duration_s=10.0, warmup_s=2.0)

    import time

    modes = {"degenerate": degenerate, "semantic": semantic, "paced": paced}

    def study():
        rows = []
        rates = {}
        for mode, fn in modes.items():
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            rate = result.records_ingested / elapsed
            rates[mode] = round(rate)
            rows.append(
                [mode, result.records_ingested, round(elapsed, 3), round(rate)]
            )
        print()
        print(
            format_table(
                ["mode", "records", "wall s", "records/s"],
                rows,
                title="sharded executor throughput (Q1, 20k-event stream)",
            )
        )
        return rates

    rates = run_once(benchmark, study)
    merge_bench_json("perf", "runtime_sharded", rates)
    assert all(rate > 0 for rate in rates.values())


def test_cross_validation_harness(benchmark):
    """The validate-runtime pipeline end to end on all three queries."""

    def study():
        return cross_validate(duration_s=8.0, warmup_s=2.0)

    rows = run_once(benchmark, study)
    print()
    print(format_validation(rows))
    worst = max(row.throughput_error for row in rows)
    merge_bench_json(
        "perf",
        "runtime_validation",
        {row.query: round(row.throughput_error, 4) for row in rows},
    )
    assert worst <= 0.10
