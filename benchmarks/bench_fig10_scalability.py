"""Figure 10: CAPS placement-search and auto-tuning scalability.

Paper section 6.5, with Q2-join:

- (a) time for CAPS to find the *first* plan satisfying three
  empirically chosen threshold vectors, with the problem size growing
  from 16 to 256 tasks (paper: tens of milliseconds, <= 100 ms);
- (b) threshold auto-tuning runtime across worker/slot combinations
  (paper: ~1 s for small deployments to ~125 s at 1024 tasks on their
  20-core machine; our single-threaded Python build runs the same
  sweep at reduced maximum scale and reports the same growth shape).
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _helpers import run_once

from repro.dataflow.cluster import Cluster, R5D_XLARGE
from repro.dataflow.physical import PhysicalGraph
from repro.core.autotune import ThresholdAutoTuner
from repro.core.greedy import greedy_threshold_seed
from repro.core.cost_model import CostModel, TaskCosts
from repro.core.search import CapsSearch, SearchLimits
from repro.experiments.reporting import format_table
from repro.workloads import q2_join

# The paper times three empirically obtained threshold vectors of
# increasing looseness (alpha_1 tightest). Their absolute values are
# specific to the authors' Q2 instance; we derive the same three
# granularity levels empirically for ours, anchored on the cost of a
# feasible balanced plan (margin 2% / 30% / 100%), so every probe has a
# satisfying plan to find — as in the paper's setup.
ALPHA_MARGINS = (("alpha_1", 0.02), ("alpha_2", 0.30), ("alpha_3", 1.00))


def scaled_q2(total_tasks: int):
    """Q2-join scaled so the physical graph has ``total_tasks`` tasks.

    Structure: 2 sources + 2x maps + join; the join takes half the
    tasks and the maps share the rest, mirroring the paper's scaling of
    slots alongside tasks.
    """
    join_p = max(1, total_tasks // 2)
    map_p = max(1, (total_tasks - join_p - 2) // 2)
    remainder = total_tasks - join_p - 2 * map_p - 2
    join_p += remainder
    graph = q2_join(
        source_parallelism=1, map_parallelism=map_p, join_parallelism=join_p
    )
    assert graph.total_tasks() == total_tasks
    return graph


#: Per-source driving rate per task: high enough that the join tasks'
#: I/O utilisation makes the state-access dimension performance-
#: sensitive (worst-case co-location oversubscribes a disk), so the
#: auto-tuner has real thresholds to find at every problem size.
RATE_PER_TASK = 2600.0


def make_model(total_tasks: int, slots_per_worker: int = 16):
    workers = max(2, -(-total_tasks // slots_per_worker))
    cluster = Cluster.homogeneous(
        R5D_XLARGE.with_slots(slots_per_worker), count=workers
    )
    graph = scaled_q2(total_tasks)
    physical = PhysicalGraph.expand(graph)
    rate = RATE_PER_TASK * total_tasks
    costs = TaskCosts.from_specs(
        physical,
        {("Q2-join", op): rate for op in graph.sources()},
    )
    return CostModel(physical, cluster, costs)


def test_fig10a_first_plan_search_time(benchmark):
    sizes = (16, 32, 64, 128, 256)

    def study():
        rows = []
        for total in sizes:
            model = make_model(total)
            timings = []
            for _label, margin in ALPHA_MARGINS:
                alpha = greedy_threshold_seed(model, margin=margin)
                search = CapsSearch(model, thresholds=alpha, collect_pareto=False)
                started = time.monotonic()
                result = search.run(
                    SearchLimits(first_satisfying=True, timeout_s=30.0)
                )
                timings.append((time.monotonic() - started, result.found))
            rows.append((total, timings))
        return rows

    rows = run_once(benchmark, study)

    print()
    print(
        format_table(
            ["tasks", "alpha_1 (ms)", "alpha_2 (ms)", "alpha_3 (ms)"],
            [
                [total] + [round(t * 1000.0, 1) for t, _found in timings]
                for total, timings in rows
            ],
            title="Figure 10a -- time to first satisfying plan (Q2-join)",
        )
    )

    for total, timings in rows:
        for elapsed, found in timings:
            assert found, f"no plan found for {total} tasks"
            # paper: <= 100 ms; allow headroom for the Python substrate
            assert elapsed < 5.0


def test_fig10b_autotune_runtime(benchmark):
    combos = [
        (8, 4), (8, 8), (8, 16),
        (12, 8), (16, 8), (16, 16),
    ]

    def study():
        rows = []
        for workers, slots in combos:
            total = workers * slots
            cluster = Cluster.homogeneous(
                R5D_XLARGE.with_slots(slots), count=workers
            )
            graph = scaled_q2(total)
            physical = PhysicalGraph.expand(graph)
            rate = RATE_PER_TASK * total
            costs = TaskCosts.from_specs(
                physical, {("Q2-join", op): rate for op in graph.sources()}
            )
            model = CostModel(physical, cluster, costs)
            tuner = ThresholdAutoTuner(
                model,
                timeout_s=180.0,
                # near-boundary infeasibility probes are the cost driver;
                # bound each so the sweep's growth reflects problem size,
                # not a single probe's exhaustion
                search_timeout_s=1.0,
                probe_max_nodes=200_000,
            )
            result = tuner.tune()
            rows.append((workers, slots, total, result))
        return rows

    rows = run_once(benchmark, study)

    print()
    print(
        format_table(
            ["workers", "slots/worker", "tasks", "runtime (s)", "iterations", "thresholds"],
            [
                [
                    w, s, total, round(r.duration_s, 2), r.iterations,
                    f"({r.thresholds.cpu:.2f}, {r.thresholds.io:.2f}, "
                    f"{r.thresholds.net:.2f})",
                ]
                for w, s, total, r in rows
            ],
            title="Figure 10b -- threshold auto-tuning runtime (Q2-join)",
        )
    )

    # runtime grows with the problem size (the paper's shape)
    smallest = rows[0][3].duration_s
    largest = rows[-1][3].duration_s
    assert largest >= smallest
    for _w, _s, _total, result in rows:
        assert result.feasible
    # the tuner found real (non-degenerate) bounds wherever a dimension
    # is performance-sensitive (the small configs are insensitive across
    # the board: even full co-location cannot saturate a worker there)
    tuned = [r for *_k, r in rows if min(r.thresholds.as_tuple()) < 1.0]
    assert len(tuned) >= 3
