"""Table 4: effect of task placement on auto-scaling accuracy.

Paper section 6.4.1: starting from a tuned configuration at 720 rec/s,
the target rate doubles twice and then halves twice; after each change
exactly one DS2 scaling action fires. A checkmark in *Throughput* means
the policy met the target rate; one in *Resources* means it provisioned
no more than the minimum required. CAPSys earns both checkmarks in all
four steps, while the baselines miss targets and over-provision because
contention corrupts the true rates DS2 consumes.

The baselines are randomised, so we run each over several seeds and
report per-seed outcomes (the paper's single-run table corresponds to
one seed).
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import run_once

from repro.dataflow.cluster import Cluster, R5D_XLARGE
from repro.controller.capsys import CAPSysController, ControllerConfig
from repro.experiments.reporting import check_or_cross, format_table
from repro.placement import FlinkDefaultStrategy, FlinkEvenlyStrategy
from repro.workloads import q3_inf

# 7 workers (14 cores): the high-rate step needs ~88% of cluster CPU,
# so placement quality decides whether the target is reachable -- the
# tightness the paper's testbed evidently had.
CLUSTER = Cluster.homogeneous(R5D_XLARGE.with_slots(8), count=7)
INITIAL = {"source": 720.0}
STEPS = [
    {"source": 1440.0},
    {"source": 2880.0},
    {"source": 1440.0},
    {"source": 720.0},
]
BASELINE_SEEDS = (0, 1, 2)


def _run(strategy, seed=0):
    controller = CAPSysController(
        q3_inf(), CLUSTER, strategy=strategy, config=ControllerConfig(seed=seed)
    )
    return controller.run_controlled_steps(
        INITIAL, STEPS, settle_s=120.0, measure_s=180.0
    )


def test_table4_autoscaling_accuracy(benchmark):
    def study():
        results = {"CAPSys": [_run("caps")]}
        for strategy_cls, name in (
            (FlinkDefaultStrategy, "Default"),
            (FlinkEvenlyStrategy, "Evenly"),
        ):
            results[name] = [
                _run(strategy_cls(), seed=seed) for seed in BASELINE_SEEDS
            ]
        return results

    results = run_once(benchmark, study)

    rows = []
    for policy, runs in results.items():
        for run_idx, outcomes in enumerate(runs):
            label = policy if len(runs) == 1 else f"{policy} (seed {run_idx})"
            row = [label]
            for o in outcomes:
                row.append(check_or_cross(o.meets_throughput))
                row.append(check_or_cross(not o.over_provisioned))
            rows.append(row)
    headers = ["policy"]
    for i in range(1, 5):
        headers += [f"s{i} thpt", f"s{i} rsrc"]
    print()
    print(
        format_table(
            headers,
            rows,
            title=(
                "Table 4 -- auto-scaling accuracy over 4 rate steps "
                "(720 -> 1440 -> 2880 -> 1440 -> 720 rec/s)"
            ),
        )
    )
    print("OK in 'thpt' = met target rate; OK in 'rsrc' = no over-provisioning")

    caps = results["CAPSys"][0]
    assert all(o.meets_throughput for o in caps)
    assert all(not o.over_provisioned for o in caps)
    # the default policy degrades DS2 in every seed: at least one step
    # misses throughput or over-provisions
    for outcomes in results["Default"]:
        assert any(
            (not o.meets_throughput) or o.over_provisioned for o in outcomes
        )
    # evenly's count balance fails under pressure in at least one seed
    # (the paper's step-2 cross)
    assert any(
        any((not o.meets_throughput) or o.over_provisioned for o in outcomes)
        for outcomes in results["Evenly"]
    )
