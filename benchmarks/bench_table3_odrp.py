"""Table 3: comparison with the ODRP joint replication+placement ILP.

Paper section 6.3, on Q3-inf over 4 c5d.4xlarge workers (8 slots each):
CAPSys reaches the target throughput with low backpressure in ~0.2 s of
decision time, while ODRP's configurations either under-provision
(Default/Weighted: low throughput, high backpressure) or over-provision
(Latency: near-target throughput at the highest slot count), and the
ILP takes orders of magnitude longer to solve as the instance grows.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _helpers import DURATION_S, WARMUP_S, profiled_controller, run_once

from repro.dataflow.cluster import C5D_4XLARGE, Cluster
from repro.experiments import make_odrp_cluster
from repro.experiments.reporting import format_percent, format_table
from repro.placement.odrp import OdrpConfig, OdrpSolver
from repro.simulator.engine import FluidSimulation
from repro.workloads import q3_inf

TARGET = 4000.0


def test_table3_odrp_comparison(benchmark):
    cluster = make_odrp_cluster()

    def study():
        graph = q3_inf()
        controller = profiled_controller(graph, cluster)
        unit_costs = controller.profile()
        rows = []

        started = time.monotonic()
        deployment = controller.deploy({"source": TARGET})
        caps_decision = time.monotonic() - started
        summary = deployment.engine.run(DURATION_S, warmup_s=WARMUP_S).only
        rows.append(("CAPSys", summary, deployment.total_tasks, caps_decision))

        by_name = {key[1]: uc for key, uc in unit_costs.items()}
        for config in (OdrpConfig.default(), OdrpConfig.weighted(), OdrpConfig.latency()):
            solver = OdrpSolver(
                graph,
                cluster,
                by_name,
                {"source": TARGET},
                config=config,
                max_parallelism=16,
                fixed_parallelism={"source": 1},
            )
            result = solver.solve()
            sim = FluidSimulation(
                result.physical, cluster, result.plan,
                {("Q3-inf", "source"): TARGET},
            )
            summary = sim.run(DURATION_S, warmup_s=WARMUP_S).only
            rows.append(
                (config.label, summary, result.slots_used, result.decision_time_s)
            )
        return rows

    rows = run_once(benchmark, study)

    print()
    print(
        format_table(
            [
                "policy", "backpressure", "throughput (rec/s)",
                "avg latency (s)", "resources (#slots)", "decision time (s)",
            ],
            [
                [
                    label,
                    format_percent(s.backpressure),
                    round(s.throughput),
                    round(s.latency_s, 3),
                    slots,
                    round(decision, 3),
                ]
                for label, s, slots, decision in rows
            ],
            title=f"Table 3 -- ODRP comparison on Q3-inf (target {TARGET:.0f} rec/s)",
        )
    )

    by_label = {label: (s, slots, t) for label, s, slots, t in rows}
    caps, caps_slots, _ = by_label["CAPSys"]
    default, default_slots, _ = by_label["ODRP-Default"]
    weighted, _, _ = by_label["ODRP-Weighted"]
    latency, latency_slots, _ = by_label["ODRP-Latency"]

    # CAPSys is the only policy that reaches the target
    assert caps.meets_target()
    assert not default.meets_target()
    # Default under-provisions hard: high backpressure, few slots
    assert default.backpressure > 0.5
    assert default_slots < caps_slots
    # Weighted sits between Default and Latency
    assert default.throughput < weighted.throughput < caps.throughput + 1e-9
    # Latency over-provisions: the most slots of the ODRP configs
    assert latency_slots >= default_slots
    # CAPSys achieves multiple times ODRP-Default's throughput (paper: ~6x)
    assert caps.throughput > default.throughput * 3


def test_table3_odrp_decision_time_scaling(benchmark):
    """ODRP's decision time grows quickly with the instance size, while
    CAPS placement stays sub-second (the paper's scalability critique,
    section 2.2 / 6.3)."""

    def study():
        graph = q3_inf()
        rows = []
        for workers, k_max in ((4, 8), (4, 16), (8, 16), (8, 24)):
            cluster = Cluster.homogeneous(C5D_4XLARGE.with_slots(8), count=workers)
            controller = profiled_controller(graph, cluster)
            by_name = {key[1]: uc for key, uc in controller.profile().items()}
            solver = OdrpSolver(
                graph, cluster, by_name, {"source": TARGET},
                config=OdrpConfig.default(),
                max_parallelism=k_max,
                fixed_parallelism={"source": 1},
                time_limit_s=300.0,
            )
            result = solver.solve()
            started = time.monotonic()
            controller.deploy({"source": TARGET})
            caps_time = time.monotonic() - started
            rows.append((workers, k_max, result.decision_time_s, caps_time))
        return rows

    rows = run_once(benchmark, study)
    print()
    print(
        format_table(
            ["workers", "max parallelism", "ODRP decision (s)", "CAPSys decision (s)"],
            [[w, k, round(t, 3), round(c, 3)] for w, k, t, c in rows],
            title="Table 3 (supplement) -- decision-time scaling",
        )
    )
    # the largest ODRP instance costs more than the smallest
    assert rows[-1][2] > rows[0][2]
