"""Figure 3: effect of co-locating resource-intensive tasks.

Paper section 3.3 runs three controlled studies with hand-picked plans
of increasing contention degree:

- (a) compute: Q3-inf inference tasks piled onto one worker;
- (b) disk I/O: Q2-join tumbling-join tasks piled onto one worker
  (110k -> 91k rec/s, backpressure 4% -> 32% in the paper);
- (c) network: Q3-inf traffic-heavy decode tasks piled onto one worker
  with every NIC capped at 1 Gbps (1555 -> 1185 rec/s, 12% -> 37%).
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import DURATION_S, WARMUP_S, run_once

from repro.experiments import make_motivation_cluster
from repro.experiments.reporting import format_percent, format_table
from repro.experiments.runner import plan_with_colocation, simulate_plan
from repro.workloads import q2_join, q3_inf, query_by_name

GBPS = 1.25e8  # 1 Gbit/s in bytes/s


def _sweep(graph, cluster, operators, degrees, rate, net_cap=None):
    rows = []
    for degree in degrees:
        plan = plan_with_colocation(graph, cluster, operators, degree)
        summary = simulate_plan(
            graph, cluster, plan, rate,
            duration_s=DURATION_S, warmup_s=WARMUP_S,
            network_cap_bytes_per_s=net_cap,
        )
        rows.append((degree, summary))
    return rows


def _print(title, rows):
    print()
    print(
        format_table(
            ["co-location degree", "throughput (rec/s)", "backpressure", "latency (s)"],
            [
                [d, round(s.throughput), format_percent(s.backpressure),
                 round(s.latency_s, 2)]
                for d, s in rows
            ],
            title=title,
        )
    )


def test_fig3a_compute_colocation(benchmark):
    preset = query_by_name("Q3-inf")
    cluster = make_motivation_cluster()
    graph = q3_inf()
    rows = run_once(
        benchmark,
        lambda: _sweep(graph, cluster, ["inference"], (1, 2, 3, 4), preset.target_rate),
    )
    _print("Figure 3a -- co-locating compute-intensive inference tasks (Q3-inf)", rows)
    low, high = rows[0][1], rows[-1][1]
    assert low.throughput > high.throughput * 1.5
    assert high.backpressure > low.backpressure + 0.2


def test_fig3b_io_colocation(benchmark):
    preset = query_by_name("Q2-join")
    cluster = make_motivation_cluster()
    graph = q2_join()
    rows = run_once(
        benchmark,
        lambda: _sweep(
            graph, cluster, ["tumbling_join"], (2, 3, 4), preset.target_rate
        ),
    )
    _print("Figure 3b -- co-locating I/O-intensive join tasks (Q2-join)", rows)
    low, high = rows[0][1], rows[-1][1]
    penalty = 1.0 - high.throughput / low.throughput
    print(f"full co-location penalty: {penalty:.1%} (paper: ~17%)")
    assert low.meets_target()
    assert 0.10 <= penalty <= 0.30


def test_fig3c_network_colocation(benchmark):
    preset = query_by_name("Q3-inf")
    cluster = make_motivation_cluster()
    graph = q3_inf()
    rows = run_once(
        benchmark,
        lambda: _sweep(
            graph, cluster, ["decode"], (1, 2, 3), preset.target_rate, net_cap=GBPS
        ),
    )
    _print(
        "Figure 3c -- co-locating network-intensive decode tasks, NICs capped "
        "at 1 Gbps (Q3-inf)",
        rows,
    )
    low, high = rows[0][1], rows[-1][1]
    assert low.throughput > high.throughput * 1.1
    assert high.backpressure > low.backpressure
