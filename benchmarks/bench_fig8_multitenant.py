"""Figure 8: the multi-tenant experiment on the 144-slot cluster.

Paper section 6.2.2: all six queries run concurrently on 18 workers.
CAPSys treats the whole workload as one dataflow graph and places it
globally; Flink's ``default`` and ``evenly`` can only deploy one query
at a time and are sensitive to submission order. In the paper, CAPSys
is the only policy that reaches the target for all six queries
(evenly: 1/6, default: 3/6).

Multi-tenant target rates are 65% of each query's isolation rate so the
combined workload fits the shared cluster under a good placement (the
paper's multi-tenant targets are likewise a separate calibration from
the isolation ones).
"""

import random
import sys

sys.path.insert(0, "benchmarks")
from _helpers import DURATION_S, WARMUP_S, ds2_sized_graph, run_once

from repro.dataflow.physical import PhysicalGraph
from repro.experiments import make_multitenant_cluster
from repro.experiments.reporting import format_percent, format_table
from repro.experiments.runner import place_sequentially, simulate_multi_job
from repro.placement import CapsStrategy, FlinkDefaultStrategy, FlinkEvenlyStrategy
from repro.workloads import ALL_QUERIES

SCALE = 0.65
BASELINE_ORDERS = 3


def test_fig8_multitenant(benchmark):
    cluster = make_multitenant_cluster()

    def study():
        jobs, rates, unit_costs = [], {}, {}
        for preset in ALL_QUERIES:
            scaled, job_rates, uc = ds2_sized_graph(
                preset, cluster, preset.isolation_rate * SCALE
            )
            jobs.append(scaled)
            rates.update(job_rates)
            unit_costs.update(uc)
        physicals = [PhysicalGraph.expand(j) for j in jobs]
        merged = PhysicalGraph.merge(physicals)

        outcomes = {}
        caps = CapsStrategy(
            rates,
            unit_costs_provider=lambda p: unit_costs,
            search_timeout_s=10.0,
        )
        plan = caps.place_validated(merged, cluster)
        outcomes["caps (global)"] = [
            simulate_multi_job(merged, cluster, plan, rates,
                               duration_s=DURATION_S, warmup_s=WARMUP_S)
        ]
        for strategy in (FlinkDefaultStrategy(), FlinkEvenlyStrategy()):
            runs = []
            for order_seed in range(BASELINE_ORDERS):
                order = list(range(len(physicals)))
                random.Random(order_seed).shuffle(order)
                strategy.seed = order_seed
                plan = place_sequentially(
                    [physicals[i] for i in order], cluster, strategy
                )
                runs.append(
                    simulate_multi_job(merged, cluster, plan, rates,
                                       duration_s=DURATION_S, warmup_s=WARMUP_S)
                )
            outcomes[strategy.name] = runs
        return merged, outcomes

    merged, outcomes = run_once(benchmark, study)

    rows = []
    met_by_strategy = {}
    for strategy, runs in outcomes.items():
        met_counts = []
        for summaries in runs:
            met_counts.append(sum(1 for s in summaries.values() if s.meets_target()))
        met_by_strategy[strategy] = max(met_counts)
        best = runs[met_counts.index(max(met_counts))]
        for job, s in sorted(best.items()):
            rows.append(
                [
                    strategy,
                    job,
                    round(s.target_rate),
                    round(s.throughput),
                    format_percent(s.backpressure),
                    s.meets_target(),
                ]
            )
    print()
    print(
        format_table(
            ["strategy", "query", "target", "throughput", "backpressure", "meets"],
            rows,
            title=(
                "Figure 8 -- multi-tenant deployment, 18 workers / 144 slots "
                "(best submission order shown for the baselines)"
            ),
        )
    )
    print(
        "queries meeting target: "
        + ", ".join(f"{k}: {v}/6" for k, v in met_by_strategy.items())
        + "  (paper: CAPSys 6/6, default 3/6, evenly 1/6)"
    )

    assert met_by_strategy["caps (global)"] == 6
    assert met_by_strategy["default"] < 6
    assert met_by_strategy["evenly"] < 6
