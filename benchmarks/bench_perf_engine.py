"""Performance-layer benchmark: steady-state fast-forward for the engine.

A standalone script (not a pytest-benchmark module) timing the engine's
fast-forward execution mode (DESIGN.md section 9) against the reference
tick-by-tick loop, and verifying the equivalence contract on every run:

a. **Steady workload** — a Figure 7-style isolation run (Q1-sliding at
   its isolation rate on the 4-worker m5d.2xlarge cluster) for 600
   simulated seconds. Constant rate and no faults means the engine
   converges once and leaps straight to the bound; the criterion is a
   >= 5x wall-clock speedup with a byte-identical summary.
b. **Chaos workload** — step rates plus a degrade/recover schedule and
   periodic checkpoints. Convergence windows are short and re-opened by
   every event, so the speedup is modest; the criterion here is purely
   byte-identical results (whatever the speedup turns out to be).

Results are merged into ``BENCH_perf.json`` (preserving the search
sections written by ``bench_perf_search.py``). ``--smoke`` shrinks the
simulated horizons so the script finishes in seconds for CI.

Usage:
    PYTHONPATH=src python benchmarks/bench_perf_engine.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _helpers import ds2_sized_graph, merge_bench_json, profiled_controller

from repro.dataflow.physical import PhysicalGraph
from repro.experiments.runner import make_isolation_cluster
from repro.faults.checkpoint import CheckpointConfig
from repro.faults.injector import EngineFaultDriver
from repro.faults.schedule import ChaosSchedule
from repro.simulator.engine import FluidSimulation, SimulationConfig
from repro.workloads import query_by_name
from repro.workloads.rates import StepSchedule


def _deployment(preset_name: str, rate: float):
    """(physical, cluster, plan, rates) for a preset's CAPS deployment."""
    preset = query_by_name(preset_name)
    cluster = make_isolation_cluster()
    scaled, rates, _ = ds2_sized_graph(preset, cluster, rate)
    controller = profiled_controller(scaled, cluster)
    physical = PhysicalGraph.expand(scaled)
    plan = controller.place(physical, {op: rate for op in scaled.sources()})
    return physical, cluster, plan, rates


def _timed_run(physical, cluster, plan, rates, duration_s, warmup_s,
               fast_forward, chaos=None, checkpoint=None):
    sim = FluidSimulation(
        physical, cluster, plan, rates,
        config=SimulationConfig(fast_forward=fast_forward),
    )
    if chaos is not None:
        sim.set_fault_driver(EngineFaultDriver(chaos, cluster))
    if checkpoint is not None:
        sim.enable_checkpoints(checkpoint)
    start = time.perf_counter()
    summary = sim.run(duration_s, warmup_s=warmup_s)
    return time.perf_counter() - start, summary, sim


def bench_steady(smoke: bool) -> dict:
    """(a) Fig. 7-style steady run: one convergence, one leap."""
    duration = 150.0 if smoke else 600.0
    warmup = 60.0 if smoke else 240.0
    preset = query_by_name("Q1-sliding")
    deployment = _deployment("Q1-sliding", preset.isolation_rate)

    ref_s, ref_summary, _ = _timed_run(*deployment, duration, warmup, False)
    ff_s, ff_summary, ff_sim = _timed_run(*deployment, duration, warmup, True)

    assert repr(ref_summary) == repr(ff_summary), (
        "fast-forward summary diverged from tick-by-tick reference"
    )
    speedup = ref_s / ff_s if ff_s > 0 else None
    meets = speedup is not None and speedup >= 5.0
    print(
        f"  {duration:.0f}s steady Q1-sliding: reference {ref_s * 1e3:.1f}ms, "
        f"fast-forward {ff_s * 1e3:.1f}ms ({speedup:.1f}x), "
        f"{ff_sim.leaps} leap(s) skipping {ff_sim.ticks_leapt} ticks; "
        "summaries byte-identical"
    )
    if not smoke:
        assert meets, f"steady-state speedup {speedup:.2f}x below the 5x criterion"
    return {
        "workload": f"Q1-sliding isolation, {duration:.0f}s simulated",
        "reference_s": round(ref_s, 4),
        "fast_forward_s": round(ff_s, 4),
        "speedup": round(speedup, 3),
        "leaps": ff_sim.leaps,
        "ticks_skipped": ff_sim.ticks_leapt,
        "meets_5x": meets,
        "results_identical": True,
    }


def bench_chaos(smoke: bool) -> dict:
    """(b) step rates + faults + checkpoints: equivalence under churn."""
    duration = 150.0 if smoke else 600.0
    warmup = 60.0 if smoke else 240.0
    interval = 40.0 if smoke else 150.0
    chaos = (
        ChaosSchedule.parse("cpu:w1@50x0.5,recover:w1@100") if smoke
        else ChaosSchedule.parse("cpu:w1@200x0.5,recover:w1@380")
    )
    checkpoint = CheckpointConfig(enabled=True, interval_s=45.0)
    preset = query_by_name("Q2-join")
    rate = StepSchedule.doubling_then_halving(
        preset.isolation_rate * 0.5, interval_s=interval, repeats=1
    )
    physical, cluster, plan, rates = _deployment("Q2-join", preset.isolation_rate * 0.5)
    rates = {key: rate for key in rates}

    ref_s, ref_summary, _ = _timed_run(
        physical, cluster, plan, rates, duration, warmup, False,
        chaos=chaos, checkpoint=checkpoint,
    )
    ff_s, ff_summary, ff_sim = _timed_run(
        physical, cluster, plan, rates, duration, warmup, True,
        chaos=chaos, checkpoint=checkpoint,
    )

    assert repr(ref_summary) == repr(ff_summary), (
        "fast-forward summary diverged from reference under chaos"
    )
    speedup = ref_s / ff_s if ff_s > 0 else None
    print(
        f"  {duration:.0f}s chaos Q2-join: reference {ref_s * 1e3:.1f}ms, "
        f"fast-forward {ff_s * 1e3:.1f}ms ({speedup:.1f}x), "
        f"{ff_sim.leaps} leap(s) skipping {ff_sim.ticks_leapt} ticks; "
        "summaries byte-identical"
    )
    return {
        "workload": (
            f"Q2-join step rates + degrade/recover + 45s checkpoints, "
            f"{duration:.0f}s simulated"
        ),
        "reference_s": round(ref_s, 4),
        "fast_forward_s": round(ff_s, 4),
        "speedup": round(speedup, 3),
        "leaps": ff_sim.leaps,
        "ticks_skipped": ff_sim.ticks_leapt,
        "results_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrunken horizons for CI (finishes in seconds)",
    )
    parser.add_argument(
        "--out-dir", default=".", help="directory for BENCH_perf.json"
    )
    args = parser.parse_args(argv)

    print("[a] steady-state fast-forward (Fig. 7-style isolation run)")
    steady = bench_steady(args.smoke)
    print("[b] fast-forward under chaos (step rates + faults + checkpoints)")
    chaos = bench_chaos(args.smoke)

    path = merge_bench_json(
        "perf",
        "engine_fast_forward",
        {"smoke": args.smoke, "steady": steady, "chaos": chaos},
        directory=args.out_dir,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
