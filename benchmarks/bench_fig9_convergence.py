"""Figure 9: effect of task placement on auto-scaling convergence.

Paper section 6.4.2: operators start at parallelism 1, the input rate
alternates between a high and a low value, and DS2 decides when to act.
With CAPSys, DS2 converges within about one step per rate change and
never over-provisions; with ``default``/``evenly``, poor placements feed
DS2 inaccurate metrics, causing oscillations and up to eight additional
scaling decisions.

The bench prints the time-bucketed throughput/resource timeline per
policy plus the count of scaling actions.
"""

import sys

sys.path.insert(0, "benchmarks")
from _helpers import run_once

from repro.dataflow.cluster import Cluster, R5D_XLARGE
from repro.controller.capsys import CAPSysController, ControllerConfig
from repro.experiments.figures import convergence_timeline_rows
from repro.experiments.reporting import format_table
from repro.placement import FlinkDefaultStrategy, FlinkEvenlyStrategy
from repro.workloads import q3_inf
from repro.workloads.rates import SquareWaveRate

# 7 workers (14 cores): the high-rate step needs ~88% of cluster CPU,
# so placement quality decides whether the target is reachable -- the
# tightness the paper's testbed evidently had.
CLUSTER = Cluster.homogeneous(R5D_XLARGE.with_slots(8), count=7)
PERIOD_S = 900.0  # the paper alternates every 20 min; compressed 900 s here
DURATION_S = 3600.0
PATTERN = SquareWaveRate(high=2600.0, low=900.0, period_s=PERIOD_S)


def _run(strategy):
    graph = q3_inf()
    controller = CAPSysController(
        graph, CLUSTER, strategy=strategy,
        config=ControllerConfig(activation_time_s=90.0, policy_interval_s=5.0),
    )
    return controller.run_adaptive(
        {"source": PATTERN},
        duration_s=DURATION_S,
        initial_parallelism={op: 1 for op in graph.operators},
    )


def test_fig9_autoscaling_convergence(benchmark):
    def study():
        return {
            "CAPSys": _run("caps"),
            "Default": _run(FlinkDefaultStrategy()),
            "Evenly": _run(FlinkEvenlyStrategy()),
        }

    results = run_once(benchmark, study)

    for policy, result in results.items():
        rows = convergence_timeline_rows(result, bucket_s=300.0)
        print()
        print(
            format_table(
                ["t (s)", "target", "throughput", "tasks"],
                [
                    [int(t), round(target), round(thpt), tasks]
                    for t, target, thpt, tasks in rows
                ],
                title=(
                    f"Figure 9 [{policy}] -- {result.rescale_count()} scaling "
                    f"decisions at "
                    + ", ".join(f"{e.time_s:.0f}s" for e in result.events)
                ),
            )
        )

    caps = results["CAPSys"]
    # One initial ramp-up plus one rescale per rate change (3 changes in
    # 3600 s with a 900 s period): converges without oscillation.
    assert caps.rescale_count() <= 5
    # CAPSys sustains the high target in the steady part of each phase.
    for start in (300.0, 2100.0):
        window_mean = caps.mean_throughput(start, start + 550.0)
        assert window_mean >= PATTERN.high * 0.85, start
    # The default policy destabilises DS2: extra scaling decisions
    # (oscillation) and/or missed high-phase targets — the paper's
    # headline convergence failure. `evenly` is seed- and geometry-
    # dependent: its count balance can coincide with load balance on
    # this cluster (see EXPERIMENTS.md), so we only require it never to
    # beat CAPSys.
    default = results["Default"]
    default_extra = default.rescale_count() > caps.rescale_count()
    default_missed = any(
        default.mean_throughput(start, start + 550.0) < PATTERN.high * 0.85
        for start in (300.0, 2100.0)
    )
    assert default_extra or default_missed
    evenly = results["Evenly"]
    assert evenly.rescale_count() >= caps.rescale_count()
    for start in (300.0, 2100.0):
        assert evenly.mean_throughput(start, start + 550.0) <= (
            caps.mean_throughput(start, start + 550.0) + 1e-6
        )
